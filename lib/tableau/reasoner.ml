type t = {
  kb : Axiom.kb;
  max_nodes : int;
  max_branches : int;
  stats : Tableau.stats;
  mutable consistent : bool option;
}

let create ?(max_nodes = 20_000) ?(max_branches = max_int) kb =
  { kb;
    max_nodes;
    max_branches;
    stats = Tableau.fresh_stats ();
    consistent = None }

let kb t = t.kb
let stats t = t.stats

let sat ?prov t extra_abox =
  Tableau.kb_satisfiable ~max_nodes:t.max_nodes ~max_branches:t.max_branches
    ~stats:t.stats ?prov
    { t.kb with abox = t.kb.abox @ extra_abox }

let is_consistent ?prov t =
  match (t.consistent, prov) with
  | Some b, None -> b
  | Some b, Some _ ->
      (* a provenance sink was supplied: re-run so it gets populated *)
      let b' = sat ?prov t [] in
      assert (b = b');
      b
  | None, _ ->
      let b = sat ?prov t [] in
      t.consistent <- Some b;
      b

let consistent_with ?prov t extra = sat ?prov t extra

let find_model t =
  Tableau.kb_model ~max_nodes:t.max_nodes ~max_branches:t.max_branches
    ~stats:t.stats t.kb

(* Fresh names use ':', which cannot appear in surface-syntax identifiers. *)
let fresh_individual = "q:fresh"
let fresh_marker = "q:marker"

let concept_satisfiable ?prov t c =
  sat ?prov t [ Axiom.Instance_of (fresh_individual, c) ]

let subsumes t c d =
  not (concept_satisfiable t (Concept.And (c, Concept.Not d)))

let equivalent t c d = subsumes t c d && subsumes t d c

let instance_of t a c = not (sat t [ Axiom.Instance_of (a, Concept.Not c) ])

let role_entailed ?prov t a r b =
  not
    (sat ?prov t
       [ Axiom.Instance_of (b, Concept.Atom fresh_marker);
         Axiom.Instance_of
           (a, Concept.Forall (r, Concept.Not (Concept.Atom fresh_marker))) ])

let same_entailed t a b =
  not
    (sat t
       [ Axiom.Instance_of (a, Concept.Atom fresh_marker);
         Axiom.Instance_of (b, Concept.Not (Concept.Atom fresh_marker)) ])

let different_entailed t a b = not (sat t [ Axiom.Same (a, b) ])

let classify t =
  let atoms = (Axiom.signature t.kb).concepts in
  List.map
    (fun a ->
      let supers =
        List.filter
          (fun b -> b <> a && subsumes t (Concept.Atom a) (Concept.Atom b))
          atoms
      in
      (a, supers))
    atoms

let validate t =
  let h = Hierarchy.build t.kb.tbox in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let check_concept c =
    List.iter
      (fun (sub : Concept.t) ->
        match sub with
        | At_least (_, r) | At_most (_, r) ->
            if Hierarchy.transitive_subs_below h r <> [] then
              warn
                "number restriction %s uses non-simple role %s (it has a \
                 transitive subrole); outside the decidable fragment"
                (Concept.to_string sub) (Role.to_string r)
        | _ -> ())
      (Concept.subconcepts c)
  in
  List.iter
    (function
      | Axiom.Concept_sub (c, d) ->
          check_concept c;
          check_concept d
      | _ -> ())
    t.kb.tbox;
  List.iter
    (function Axiom.Instance_of (_, c) -> check_concept c | _ -> ())
    t.kb.abox;
  List.rev !warnings
