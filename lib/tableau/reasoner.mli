(** Standard reasoning services for classical [SHOIN(D)] knowledge bases,
    reduced to KB satisfiability in the usual way (cf. §2.1 of the paper: OWL
    DL entailment reduces to [SHOIN(D)] KB (un)satisfiability).

    Each query runs the tableau on the KB plus the query assertions, but
    the query-independent preprocessing (absorption, role hierarchy,
    blocking-strategy signals) is computed once per KB as a cached
    {!Tableau.prep} and refreshed incrementally by {!apply_delta}. *)

type t

val create : ?max_nodes:int -> ?max_branches:int -> Axiom.kb -> t

val kb : t -> Axiom.kb

val apply_delta :
  t ->
  add_abox:Axiom.abox_axiom list ->
  retract_abox:Axiom.abox_axiom list ->
  add_tbox:Axiom.tbox_axiom list ->
  unit
(** Update the KB in place: retractions remove the first structurally
    equal occurrence each (absent retractions are ignored), additions are
    appended.  The cached preprocessing is refreshed incrementally — TBox
    additions extend the absorption maps and rebuild the role hierarchy,
    ABox changes only rescan the ABox blocking signals — and the cached
    consistency verdict is reset. *)

val stats : t -> Tableau.stats
(** Cumulative tableau statistics over all queries run so far. *)

val is_consistent : ?prov:Tableau.prov -> t -> bool
(** KB satisfiability (cached after the first call).  Passing [?prov]
    populates the accumulator with the run's touched individuals and
    concept names; with a cached verdict this forces a (deterministic)
    re-run so the provenance is still complete. *)

val consistent_with : ?prov:Tableau.prov -> t -> Axiom.abox_axiom list -> bool
(** Satisfiability of the KB together with extra assertions. *)

val find_model : t -> Interp.t option
(** A verified finite model of the KB, when the tableau's completion graph
    yields one (see {!Tableau.kb_model}). *)

val concept_satisfiable : ?prov:Tableau.prov -> t -> Concept.t -> bool
(** Is [C] satisfiable w.r.t. the KB (i.e. is [K ∪ {C(fresh)}]
    satisfiable)? *)

val subsumes : t -> Concept.t -> Concept.t -> bool
(** [subsumes t c d] iff [K ⊨ C ⊑ D], i.e. [C ⊓ ¬D] is unsatisfiable
    w.r.t. [K]. *)

val equivalent : t -> Concept.t -> Concept.t -> bool

val instance_of : t -> string -> Concept.t -> bool
(** [instance_of t a c] iff [K ⊨ C(a)], i.e. [K ∪ {¬C(a)}] is
    unsatisfiable.  In an inconsistent KB every instance check holds — the
    triviality the paper sets out to repair. *)

val role_entailed : ?prov:Tableau.prov -> t -> string -> Role.t -> string -> bool
(** [K ⊨ R(a,b)], decided with a fresh marker concept:
    [K ∪ {b : X, a : ∀R.¬X}] is unsatisfiable. *)

val same_entailed : t -> string -> string -> bool
val different_entailed : t -> string -> string -> bool

val classify : t -> (string * string list) list
(** For each atomic concept of the KB's signature, its atomic subsumers
    (excluding itself unless equivalent). Brute-force pairwise subsumption. *)

val validate : t -> string list
(** Static well-formedness warnings, e.g. number restrictions over
    non-simple (transitive) roles, which fall outside the decidable
    fragment. *)
