exception Resource_limit of string

module CSet = Concept.Set
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module RSet = Role.Set
module SMap = Map.Make (String)

module EKey = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end

module EMap = Map.Make (EKey)

(* Rule kinds, indexed: the per-run stats array, the registry counters
   and the flight-recorder event kinds all share this enumeration. *)
let rule_names =
  [| "gci"; "and"; "or_unit"; "unfold"; "forall"; "forall_trans";
     "one_of"; "not_one_of"; "exists"; "at_least" |]

let n_rule_kinds = Array.length rule_names

type stats = {
  mutable runs : int;
  mutable branches_explored : int;
  mutable nodes_created : int;
  mutable merges : int;
  mutable clashes : int;
  mutable backtracks : int;
  mutable blocking_events : int;
  rule_firings : int array; (* indexed like [rule_names] *)
}

let fresh_stats () =
  { runs = 0;
    branches_explored = 0;
    nodes_created = 0;
    merges = 0;
    clashes = 0;
    backtracks = 0;
    blocking_events = 0;
    rule_firings = Array.make n_rule_kinds 0 }

let copy_stats s = { s with rule_firings = Array.copy s.rule_firings }

(* ------------------------------------------------------------------ *)
(* Observability: registry metrics (all gated on [Obs.on]) and
   per-run provenance. *)

let c_runs = Obs.counter "tableau.runs"
let c_sat = Obs.counter "tableau.sat"
let c_unsat = Obs.counter "tableau.unsat"
let c_nodes = Obs.counter "tableau.nodes_created"
let c_merges = Obs.counter "tableau.merges"
let c_branches = Obs.counter "tableau.branches"
let c_backtracks = Obs.counter "tableau.backtracks"
let c_blocks = Obs.counter "tableau.blocking_events"
let h_run = Obs.histogram "tableau.run_ns"

(* rule firings by rule name — indices into [rule_names] *)
let r_gci = 0
let r_and = 1
let r_or_unit = 2
let r_unfold = 3
let r_forall = 4
let r_forall_trans = 5
let r_one_of = 6
let r_not_one_of = 7
let r_exists = 8
let r_at_least = 9
let c_rules = Array.map (fun n -> Obs.counter ("tableau.rule." ^ n)) rule_names
let f_rules = Array.map (fun n -> "rule." ^ n) rule_names (* flight kinds *)

(* clash causes *)
let clash_names =
  [| "bottom"; "atomic"; "nominal"; "at_most"; "distinct"; "merge"; "data" |]

let x_bottom = 0
let x_atomic = 1
let x_nominal = 2
let x_at_most = 3
let x_distinct = 4
let x_merge = 5
let x_data = 6
let c_clashes = Array.map (fun n -> Obs.counter ("tableau.clash." ^ n)) clash_names
let f_clashes = Array.map (fun n -> "clash." ^ n) clash_names

(* Per-run provenance: the named individuals and (demangled) atomic
   concepts a tableau run touched.  Fresh query artefacts use names
   containing ':' (see {!Reasoner.fresh_individual}) and are excluded,
   so a run over a reduced KB reports exactly the user-level names. *)
module NSet = Set.Make (String)

type prov = { mutable p_inds : NSet.t; mutable p_atoms : NSet.t }

let fresh_prov () = { p_inds = NSet.empty; p_atoms = NSet.empty }
let prov_individuals p = NSet.elements p.p_inds
let prov_concepts p = NSet.elements p.p_atoms

let prov_add_ind p a =
  if not (String.contains a ':') then p.p_inds <- NSet.add a p.p_inds

let prov_add_atom p a =
  match Mangle.atom_origin a with
  | Mangle.Pos x | Mangle.Neg x -> p.p_atoms <- NSet.add x p.p_atoms
  | Mangle.Plain s ->
      if not (String.contains s ':') then p.p_atoms <- NSet.add s p.p_atoms

type node = {
  labels : CSet.t;
  parent : int option;  (* [Some p] for blockable tree nodes *)
  data_asserted : (string * Datatype.value) list;
}

type state = {
  nodes : node IMap.t;
  edges : RSet.t EMap.t;       (* directed edges labelled with role sets *)
  succs : ISet.t IMap.t;       (* adjacency index: x -> {y | (x,y) edge} *)
  preds : ISet.t IMap.t;       (* adjacency index: y -> {x | (x,y) edge} *)
  distinct : ISet.t IMap.t;    (* symmetric ≠ relation *)
  names : int SMap.t;          (* individual name -> node id *)
  next_id : int;
  dirty : ISet.t;              (* nodes whose rules must be (re)examined *)
  open_or : ISet.t;            (* nodes that may carry an undecided ⊔ *)
  counting : ISet.t;           (* nodes carrying ≤-restrictions or
                                  disjunctive nominals *)
  gen_pending : ISet.t;        (* nodes whose generating rules may apply *)
}

(* Blocking strategy, chosen by the expressivity actually used by the KB
   (weaker blocking converges much earlier):
   - [Subset]: L(x) ⊆ L(y) for an ancestor y — sound without inverse roles
     and without at-most restrictions (constraints only ever look down the
     tree and grow monotonically);
   - [Equal]: L(x) = L(y) — sound without inverse roles;
   - [Pairwise]: the full SHIQ-style condition, used whenever inverse roles
     occur. *)
type blocking = Subset | Equal | Pairwise

type ctx = {
  h : Hierarchy.t;
  unfold : Concept.t list SMap.t;  (* lazily unfolded atomic-LHS axioms *)
  gcis : Concept.t list;           (* internalized: added to every node *)
  blocking : blocking;
  max_nodes : int;
  max_branches : int;
  stats : stats;
  prov : prov option;  (* provenance sink for this run, if requested *)
}

(* One site per diagnostic event: the registry counter (gated on
   [Obs.on]), the per-run stats cell (unconditional — cost records need
   it with no sink armed) and the flight ring (gated on [Flight.on])
   move together. *)

let fired_rule ctx ri x =
  Obs.incr c_rules.(ri);
  ctx.stats.rule_firings.(ri) <- ctx.stats.rule_firings.(ri) + 1;
  if !Flight.on then Flight.record f_rules.(ri) x (-1) ""

let clash_hit ctx ci x =
  Obs.incr c_clashes.(ci);
  ctx.stats.clashes <- ctx.stats.clashes + 1;
  if !Flight.on then Flight.record f_clashes.(ci) x (-1) ""

let backtracked ctx x =
  Obs.incr c_backtracks;
  ctx.stats.backtracks <- ctx.stats.backtracks + 1;
  if !Flight.on then Flight.record "backtrack" x (-1) ""

(* ------------------------------------------------------------------ *)
(* State accessors *)

let node st x = IMap.find x st.nodes

let labels st x = (node st x).labels

let edge_label st x y =
  match EMap.find_opt (x, y) st.edges with Some s -> s | None -> RSet.empty

let distinct_of st x =
  match IMap.find_opt x st.distinct with Some s -> s | None -> ISet.empty

let are_distinct st x y = ISet.mem y (distinct_of st x)

let mark_dirty st x = { st with dirty = ISet.add x st.dirty }

let add_distinct st x y =
  let dx = ISet.add y (distinct_of st x) in
  let dy = ISet.add x (distinct_of st y) in
  { st with
    distinct = IMap.add x dx (IMap.add y dy st.distinct);
    dirty = ISet.add x (ISet.add y st.dirty) }

let add_labels st x cs =
  let n = node st x in
  let labels = List.fold_left (fun acc c -> CSet.add c acc) n.labels cs in
  let has_or =
    List.exists (function Concept.Or _ -> true | _ -> false) cs
  in
  let has_counting =
    List.exists
      (function
        | Concept.At_most _ | Concept.One_of (_ :: _ :: _) -> true
        | _ -> false)
      cs
  in
  { st with
    nodes = IMap.add x { n with labels } st.nodes;
    dirty = ISet.add x st.dirty;
    open_or = (if has_or then ISet.add x st.open_or else st.open_or);
    counting = (if has_counting then ISet.add x st.counting else st.counting);
    gen_pending = ISet.add x st.gen_pending }

let iset_at m x = match IMap.find_opt x m with Some s -> s | None -> ISet.empty

let add_edge_label st x y rs =
  let cur = edge_label st x y in
  { st with
    edges = EMap.add (x, y) (RSet.union cur rs) st.edges;
    succs = IMap.add x (ISet.add y (iset_at st.succs x)) st.succs;
    preds = IMap.add y (ISet.add x (iset_at st.preds y)) st.preds;
    dirty = ISet.add x (ISet.add y st.dirty);
    gen_pending = ISet.add x (ISet.add y st.gen_pending) }

let new_node ctx st ~parent ~labels:lbls =
  if st.next_id >= ctx.max_nodes then begin
    let msg = Printf.sprintf "node limit %d exceeded" ctx.max_nodes in
    if !Flight.on then Flight.trip msg;
    raise (Resource_limit msg)
  end;
  ctx.stats.nodes_created <- ctx.stats.nodes_created + 1;
  Obs.incr c_nodes;
  if !Flight.on then Flight.record "node" st.next_id (-1) "";
  let id = st.next_id in
  let n = { labels = CSet.empty; parent; data_asserted = [] } in
  let st =
    { st with
      nodes = IMap.add id n st.nodes;
      next_id = id + 1;
      dirty = ISet.add id st.dirty }
  in
  (id, add_labels st id lbls)

(* All (neighbour, connecting-role) pairs of [x]; a role appears once per
   edge label entry.  Uses the adjacency indices: O(degree). *)
let neighbour_roles st x =
  let out =
    ISet.fold
      (fun y acc ->
        RSet.fold (fun r acc -> (y, r) :: acc) (edge_label st x y) acc)
      (iset_at st.succs x) []
  in
  ISet.fold
    (fun y acc ->
      RSet.fold (fun r acc -> (y, Role.inv r) :: acc) (edge_label st y x) acc)
    (iset_at st.preds x) out

(* Nodes y that are R-neighbours of x (deduplicated). *)
let r_neighbours ctx st x r =
  let ys =
    List.filter_map
      (fun (y, t) -> if Hierarchy.sub_of ctx.h t r then Some y else None)
      (neighbour_roles st x)
  in
  ISet.elements (ISet.of_list ys)

(* ------------------------------------------------------------------ *)
(* Blocking (pairwise, ancestor) *)

(* The label of the tree edge p -> x as seen from p, including redirected
   back-edges. *)
let tree_edge_label st p x =
  let fwd = edge_label st p x in
  let bwd = RSet.map Role.inv (edge_label st x p) in
  RSet.union fwd bwd

(* Blocking status: the set of blocked nodes (directly or indirectly) and,
   for directly blocked nodes, their blocking witness (used by model
   extraction to tie the loop back). *)
let compute_blocking ctx st =
  (* Process nodes by id: parents are always older than their children. *)
  let blocked = ref ISet.empty in
  let witness = ref IMap.empty in
  IMap.iter
    (fun x n ->
      match n.parent with
      | None -> ()
      | Some px ->
          if ISet.mem px !blocked then blocked := ISet.add x !blocked
          else begin
            let lx = n.labels and lpx = labels st px in
            match ctx.blocking with
            | Subset | Equal ->
                (* anywhere blocking: any older unblocked witness *)
                let blocks y =
                  match ctx.blocking with
                  | Subset -> CSet.subset lx (labels st y)
                  | Equal | Pairwise -> CSet.equal (labels st y) lx
                in
                (try
                   IMap.iter
                     (fun y _ ->
                       if y >= x then raise Exit
                       else if (not (ISet.mem y !blocked)) && blocks y then begin
                         blocked := ISet.add x !blocked;
                         witness := IMap.add x y !witness;
                         raise Exit
                       end)
                     st.nodes
                 with Exit -> ())
            | Pairwise ->
                let ex = tree_edge_label st px x in
                let blocks y =
                  match (node st y).parent with
                  | None -> false
                  | Some py ->
                      CSet.equal (labels st y) lx
                      && CSet.equal (labels st py) lpx
                      && RSet.equal (tree_edge_label st py y) ex
                in
                let rec walk_up y =
                  if y <> x && (not (ISet.mem y !blocked)) && blocks y then begin
                    blocked := ISet.add x !blocked;
                    witness := IMap.add x y !witness
                  end
                  else
                    match (node st y).parent with
                    | None -> ()
                    | Some py -> walk_up py
                in
                (* walk strictly above x, starting from its parent *)
                walk_up px
          end)
    st.nodes;
  (!blocked, !witness)


(* ------------------------------------------------------------------ *)
(* Merging with pruning *)

let subtree st root =
  let rec go acc x =
    let children =
      IMap.fold
        (fun y n acc -> if n.parent = Some x then y :: acc else acc)
        st.nodes []
    in
    List.fold_left go (ISet.add x acc) children
  in
  go ISet.empty root

let remove_nodes st doomed =
  let nodes = IMap.filter (fun x _ -> not (ISet.mem x doomed)) st.nodes in
  let edges =
    EMap.filter
      (fun (a, b) _ -> not (ISet.mem a doomed || ISet.mem b doomed))
      st.edges
  in
  let distinct =
    IMap.filter_map
      (fun x s ->
        if ISet.mem x doomed then None
        else
          let s = ISet.diff s doomed in
          Some s)
      st.distinct
  in
  let prune_index m =
    IMap.filter_map
      (fun x s ->
        if ISet.mem x doomed then None else Some (ISet.diff s doomed))
      m
  in
  { st with
    nodes;
    edges;
    distinct;
    succs = prune_index st.succs;
    preds = prune_index st.preds;
    dirty = ISet.diff st.dirty doomed;
    open_or = ISet.diff st.open_or doomed;
    counting = ISet.diff st.counting doomed;
    gen_pending = ISet.diff st.gen_pending doomed }

(* Merge node [src] into [dst]: union labels, redirect edges, transfer
   distinctness and names, prune src's blockable subtree.  Returns [None] on
   a ≠-clash. *)
let rec merge ctx st ~src ~dst =
  if src = dst then Some st
  else if ISet.mem dst (subtree st src) then merge ctx st ~src:dst ~dst:src
  else if are_distinct st src dst then None
  else begin
    ctx.stats.merges <- ctx.stats.merges + 1;
    Obs.incr c_merges;
    if !Flight.on then Flight.record "merge" src dst "";
    let doomed = ISet.remove src (subtree st src) in
    let st = remove_nodes st doomed in
    let nsrc = node st src and ndst = node st dst in
    (* union labels and asserted data edges *)
    let ndst =
      { ndst with
        labels = CSet.union ndst.labels nsrc.labels;
        data_asserted = nsrc.data_asserted @ ndst.data_asserted }
    in
    let st = { st with nodes = IMap.add dst ndst st.nodes } in
    (* redirect edges *)
    let st =
      EMap.fold
        (fun (a, b) rs st ->
          if a = src && b = src then add_edge_label st dst dst rs
          else if a = src then add_edge_label st dst b rs
          else if b = src then add_edge_label st a dst rs
          else st)
        st.edges st
    in
    let st =
      { st with
        edges = EMap.filter (fun (a, b) _ -> a <> src && b <> src) st.edges }
    in
    (* transfer distinctness *)
    let st =
      ISet.fold (fun y st -> add_distinct st y dst) (distinct_of st src) st
    in
    (* purge src from the adjacency indices of its neighbours *)
    let preds' =
      ISet.fold
        (fun y m -> IMap.add y (ISet.remove src (iset_at m y)) m)
        (iset_at st.succs src) st.preds
    in
    let succs' =
      ISet.fold
        (fun y m -> IMap.add y (ISet.remove src (iset_at m y)) m)
        (iset_at st.preds src) st.succs
    in
    let st =
      { st with
        distinct = IMap.remove src st.distinct;
        names = SMap.map (fun x -> if x = src then dst else x) st.names;
        nodes = IMap.remove src st.nodes;
        succs = IMap.remove src succs';
        preds = IMap.remove src preds' }
    in
    (* re-examine the merged node and everything around it *)
    let st =
      ISet.fold
        (fun y st -> mark_dirty st y)
        (ISet.union (iset_at st.succs dst) (iset_at st.preds dst))
        (mark_dirty st dst)
    in
    (* dst absorbed src's label: it may now carry choices or new work *)
    let st =
      { st with
        open_or = ISet.add dst st.open_or;
        counting = ISet.add dst st.counting;
        gen_pending =
          ISet.union st.gen_pending
            (ISet.add dst
               (ISet.union (iset_at st.succs dst) (iset_at st.preds dst))) }
    in
    if are_distinct st dst dst then None else Some st
  end

(* ------------------------------------------------------------------ *)
(* Clash detection *)

(* Is there a set of [k] pairwise-distinct nodes among [ys]? *)
let exists_distinct_clique st k ys =
  let rec go chosen = function
    | [] -> List.length chosen >= k
    | _ when List.length chosen >= k -> true
    | y :: rest ->
        (List.for_all (fun z -> are_distinct st y z) chosen
        && go (y :: chosen) rest)
        || go chosen rest
  in
  go [] ys

let node_clash ctx st x =
  (* [hit] tags the detected clash with its cause. *)
  let hit cause = clash_hit ctx cause x; true in
  let ls = labels st x in
  (CSet.mem Concept.Bottom ls && hit x_bottom)
  || CSet.exists
       (fun c ->
         match (c : Concept.t) with
         | Not (Atom a) -> CSet.mem (Concept.Atom a) ls && hit x_atomic
         | Not (One_of os) ->
             List.exists (fun o -> SMap.find_opt o st.names = Some x) os
             && hit x_nominal
         | At_most (n, r) ->
             let ys = r_neighbours ctx st x r in
             List.length ys > n
             && exists_distinct_clique st (n + 1) ys
             && hit x_at_most
         | _ -> false)
       ls
  || (are_distinct st x x && hit x_distinct)

(* Record every name mapping to node [x] into the run's provenance: used
   at clash and merge sites, where the involved individuals demonstrably
   interact with the query whatever the eventual verdict. *)
let prov_record_node ctx st x =
  match ctx.prov with
  | None -> ()
  | Some p -> SMap.iter (fun a y -> if y = x then prov_add_ind p a) st.names

(* ------------------------------------------------------------------ *)
(* Deterministic saturation *)

exception Clashed

let rec disjuncts (c : Concept.t) =
  match c with Or (a, b) -> disjuncts a @ disjuncts b | c -> [ c ]

(* A disjunct is locally falsified when its (atomic) complement is already
   in the label: choosing it would clash immediately.  Used for unit
   propagation and branch pruning. *)
let falsified lbls (d : Concept.t) =
  match d with
  | Atom a -> CSet.mem (Concept.Not (Concept.Atom a)) lbls
  | Not (Atom a) -> CSet.mem (Concept.Atom a) lbls
  | Bottom -> true
  | _ -> false

(* Apply all deterministic, non-generating rules until fixpoint, driven by
   the dirty set: only nodes whose label, edges or distinctness changed are
   re-examined.  Returns the saturated state and the set of nodes touched
   (the only candidates for new clashes).
   Raises [Clashed] on a merge clash. *)
let saturate ctx st =
  let st = ref st in
  let touched = ref ISet.empty in
  (* nodes on which a rule actually fired (labels grew, a merge or a
     distinctness constraint involved them) — the only nodes whose named
     individuals enter the run's provenance.  Told assertions that never
     interact record nothing, which is what keeps provenance small enough
     for selective cache invalidation to retain anything. *)
  let fired = ref ISet.empty in
  while not (ISet.is_empty !st.dirty) do
    let work = !st.dirty in
    st := { !st with dirty = ISet.empty };
    touched := ISet.union !touched work;
    let add rule x cs =
      let cs = List.filter (fun c -> not (CSet.mem c (labels !st x))) cs in
      if cs <> [] then begin
        fired_rule ctx rule x;
        fired := ISet.add x !fired;
        st := add_labels !st x cs
      end
    in
    let ids = ISet.elements work in
    List.iter
      (fun x ->
        if IMap.mem x !st.nodes then begin
          (* GCIs on every node *)
          add r_gci x ctx.gcis;
          CSet.iter
            (fun c ->
              if IMap.mem x !st.nodes then
                match (c : Concept.t) with
                | And (a, b) -> add r_and x [ a; b ]
                | Or _ ->
                    (* unit propagation over the flattened disjunction *)
                    let lbls = labels !st x in
                    let ds = disjuncts c in
                    if not (List.exists (fun d -> CSet.mem d lbls) ds) then begin
                      match List.filter (fun d -> not (falsified lbls d)) ds with
                      | [] -> add r_or_unit x [ Concept.Bottom ]
                      | [ d ] -> add r_or_unit x [ d ]
                      | _ :: _ :: _ -> ()
                    end
                | Atom a -> (
                    match SMap.find_opt a ctx.unfold with
                    | Some cs -> add r_unfold x cs
                    | None -> ())
                | Forall (s, body) ->
                    List.iter
                      (fun y -> add r_forall y [ body ])
                      (r_neighbours ctx !st x s);
                    (* ∀₊: propagate through transitive subroles *)
                    List.iter
                      (fun r ->
                        List.iter
                          (fun y -> add r_forall_trans y [ Concept.Forall (r, body) ])
                          (r_neighbours ctx !st x r))
                      (Hierarchy.transitive_subs_below ctx.h s)
                | One_of [ o ] -> (
                    match SMap.find_opt o !st.names with
                    | Some y when y = x -> ()
                    | Some y -> (
                        fired_rule ctx r_one_of x;
                        fired := ISet.add x (ISet.add y !fired);
                        match merge ctx !st ~src:x ~dst:y with
                        | Some st' -> st := st'
                        | None ->
                            clash_hit ctx x_merge x;
                            raise Clashed)
                    | None ->
                        (* x becomes the named node for o; promote to root
                           so it can never be pruned or blocked *)
                        fired := ISet.add x !fired;
                        let n = node !st x in
                        st :=
                          mark_dirty
                            { !st with
                              nodes =
                                IMap.add x { n with parent = None } !st.nodes;
                              names = SMap.add o x !st.names }
                            x)
                | Not (One_of os) ->
                    List.iter
                      (fun o ->
                        let st', y =
                          match SMap.find_opt o !st.names with
                          | Some y -> (!st, y)
                          | None ->
                              let y, st' =
                                new_node ctx !st ~parent:None ~labels:[]
                              in
                              ( { st' with names = SMap.add o y st'.names },
                                y )
                        in
                        st := st';
                        if not (are_distinct !st x y) then begin
                          fired_rule ctx r_not_one_of x;
                          fired := ISet.add x (ISet.add y !fired);
                          st := add_distinct !st x y
                        end)
                      os
                | _ -> ())
            (labels !st x)
        end)
      ids
  done;
  (* Provenance is harvested per saturation pass, from the touched set:
     this also captures work done on branches that later backtrack, so
     UNSAT runs report what they examined, not just the final state.
     Individuals are harvested selectively — only names mapping to a node
     in [fired] — while atoms stay coarse (every label of every touched
     node): TBox-delta retention needs "this atom never appeared in any
     label", ABox-delta retention only needs "a rule involved this
     individual" (told-only names are covered by the component closure on
     the eviction side). *)
  (match ctx.prov with
  | None -> ()
  | Some p ->
      SMap.iter (fun a x -> if ISet.mem x !fired then prov_add_ind p a) !st.names;
      ISet.iter
        (fun x ->
          match IMap.find_opt x !st.nodes with
          | None -> ()
          | Some n ->
              CSet.iter
                (fun c ->
                  match (c : Concept.t) with
                  | Atom a | Not (Atom a) -> prov_add_atom p a
                  | _ -> ())
                n.labels)
        !touched);
  (!st, !touched)

(* ------------------------------------------------------------------ *)
(* Nondeterministic choices *)

type choice =
  | Disjunction of int * Concept.t list        (* node, disjuncts to try *)
  | Merge_pairs of (int * int) list            (* ≤-rule merge candidates *)
  | Nominal_choice of int * string list        (* node, nominals to try *)

let find_choice ctx st =
  (* Disjunctions first, scanning only nodes registered in [open_or] and
     pruning the ones that turn out fully decided; fail-first heuristic:
     branch on a disjunction with the fewest live alternatives. *)
  let best = ref None in
  let best_size = ref max_int in
  let still_open = ref ISet.empty in
  ISet.iter
    (fun x ->
      match IMap.find_opt x st.nodes with
      | None -> ()
      | Some n ->
          let node_open = ref false in
          CSet.iter
            (fun c ->
              match (c : Concept.t) with
              | Or _ ->
                  let ds = disjuncts c in
                  if not (List.exists (fun d -> CSet.mem d n.labels) ds) then begin
                    node_open := true;
                    (* saturation already handled the 0/1-candidate cases *)
                    let live =
                      List.filter (fun d -> not (falsified n.labels d)) ds
                    in
                    let k = List.length live in
                    if k < !best_size then begin
                      best := Some (Disjunction (x, live));
                      best_size := k
                    end
                  end
              | _ -> ())
            n.labels;
          if !node_open then still_open := ISet.add x !still_open)
    st.open_or;
  let st = { st with open_or = !still_open } in
  match !best with
  | Some _ as choice -> (choice, st)
  | None ->
      (* counting choices: ≤-merges and disjunctive nominals.  Nodes with
         ≤-restrictions stay registered (new edges can retrigger them);
         nodes whose only reason was a now-resolved nominal are pruned. *)
      let found = ref None in
      let still = ref ISet.empty in
      (try
         ISet.iter
           (fun x ->
             match IMap.find_opt x st.nodes with
             | None -> ()
             | Some n ->
                 let keep = ref false in
                 CSet.iter
                   (fun c ->
                     match (c : Concept.t) with
                     | At_most (k, r) ->
                         keep := true;
                         let ys = r_neighbours ctx st x r in
                         if List.length ys > k then begin
                           let pairs = ref [] in
                           List.iteri
                             (fun i y ->
                               List.iteri
                                 (fun j z ->
                                   if i < j && not (are_distinct st y z) then
                                     let src, dst =
                                       if y > z then (y, z) else (z, y)
                                     in
                                     pairs := (src, dst) :: !pairs)
                                 ys)
                             ys;
                           if !pairs <> [] then begin
                             still := ISet.add x !still;
                             found := Some (Merge_pairs !pairs);
                             raise Exit
                           end
                           (* no mergeable pair: clash will be caught by
                              the clique check *)
                         end
                     | One_of (_ :: _ :: _ as os) ->
                         if
                           not
                             (List.exists
                                (fun o -> SMap.find_opt o st.names = Some x)
                                os)
                         then begin
                           keep := true;
                           still := ISet.add x !still;
                           found := Some (Nominal_choice (x, os));
                           raise Exit
                         end
                     | _ -> ())
                   n.labels;
                 if !keep then still := ISet.add x !still)
           st.counting
       with Exit ->
         (* keep the not-yet-visited nodes registered *)
         ISet.iter
           (fun x -> still := ISet.add x !still)
           st.counting);
      (!found, { st with counting = !still })

(* ------------------------------------------------------------------ *)
(* Generating rules *)

(* Lazy blocked check with per-call memoization: a node is blocked iff an
   ancestor directly blocks it or an ancestor is itself blocked. *)
let blocked_checker ctx st =
  let memo = Hashtbl.create 16 in
  let rec directly_blocked x =
    match (node st x).parent with
    | None -> false
    | Some px -> (
        let lx = labels st x and lpx = labels st px in
        match ctx.blocking with
        | Subset | Equal ->
            (* ANYWHERE blocking: any older unblocked node may witness —
               essential to collapse exponential unfolding trees *)
            let blocks y = match ctx.blocking with
              | Subset -> CSet.subset lx (labels st y)
              | Equal | Pairwise -> CSet.equal (labels st y) lx
            in
            IMap.exists
              (fun y _ -> y < x && (not (is_blocked y)) && blocks y)
              st.nodes
        | Pairwise ->
            (* ancestor pairwise blocking (inverse roles present) *)
            let ex = tree_edge_label st px x in
            let blocks y =
              match (node st y).parent with
              | None -> false
              | Some py ->
                  CSet.equal (labels st y) lx
                  && CSet.equal (labels st py) lpx
                  && RSet.equal (tree_edge_label st py y) ex
            in
            let rec walk y =
              (y <> x && (not (is_blocked y)) && blocks y)
              ||
              match (node st y).parent with
              | None -> false
              | Some py -> walk py
            in
            walk px)
  and is_blocked x =
    match Hashtbl.find_opt memo x with
    | Some b -> b
    | None ->
        let b =
          match (node st x).parent with
          | None -> false
          | Some px -> is_blocked px || directly_blocked x
        in
        if b then begin
          Obs.incr c_blocks;
          ctx.stats.blocking_events <- ctx.stats.blocking_events + 1;
          if !Flight.on then Flight.record "block" x (-1) ""
        end;
        Hashtbl.add memo x b;
        b
  in
  is_blocked

(* Generating rules are only re-examined on the pending frontier: nodes
   whose label or neighbourhood changed since they were last found fully
   expanded.  Blocked nodes stay pending (they may unblock later); nodes
   with nothing to generate are dropped.  Returns the (possibly pruned)
   state alongside the rule application. *)
let find_generating ctx st =
  let is_blocked = blocked_checker ctx st in
  let result = ref None in
  let still = ref ISet.empty in
  (try
     ISet.iter
       (fun x ->
         match IMap.find_opt x st.nodes with
         | None -> ()
         | Some n ->
             if is_blocked x then still := ISet.add x !still
             else
               let applicable = ref false in
               CSet.iter
                 (fun c ->
                   match (c : Concept.t) with
                   | Exists (r, body) ->
                       let witnessed =
                         List.exists
                           (fun y -> CSet.mem body (labels st y))
                           (r_neighbours ctx st x r)
                       in
                       if not witnessed then begin
                         applicable := true;
                         result :=
                           Some
                             (fun st ->
                               fired_rule ctx r_exists x;
                               let y, st =
                                 new_node ctx st ~parent:(Some x)
                                   ~labels:[ body ]
                               in
                               add_edge_label st x y (RSet.singleton r));
                         raise Exit
                       end
                   | At_least (k, r) ->
                       let ys = r_neighbours ctx st x r in
                       if not (exists_distinct_clique st k ys) then begin
                         applicable := true;
                         result :=
                           Some
                             (fun st ->
                               fired_rule ctx r_at_least x;
                               (* create k fresh pairwise-distinct
                                  successors *)
                               let rec go st created i =
                                 if i = 0 then (st, created)
                                 else
                                   let y, st =
                                     new_node ctx st ~parent:(Some x)
                                       ~labels:[]
                                   in
                                   let st =
                                     add_edge_label st x y (RSet.singleton r)
                                   in
                                   let st =
                                     List.fold_left
                                       (fun st z -> add_distinct st y z)
                                       st created
                                   in
                                   go st (y :: created) (i - 1)
                               in
                               let st, _ = go st [] k in
                               st);
                         raise Exit
                       end
                   | _ -> ())
                 n.labels;
               ignore !applicable)
       st.gen_pending
   with Exit ->
     (* keep everything pending: the applied rule will re-register what it
        touches, and unvisited nodes must not be lost *)
     still := st.gen_pending);
  (!result, { st with gen_pending = !still })

(* ------------------------------------------------------------------ *)
(* Final (rule-free) checks: datatypes *)

let data_ok ctx st =
  IMap.for_all
    (fun _ n ->
      Datacheck.satisfiable
        ~data_supers:(Hierarchy.data_supers ctx.h)
        ~asserted:n.data_asserted
        ~constraints:(CSet.elements n.labels))
    st.nodes

(* ------------------------------------------------------------------ *)
(* Main expansion loop *)

(* Expand to a complete, clash-free state ([Some]) or fail ([None]). *)
let rec expand ctx st =
  match saturate ctx st with
  | exception Clashed -> None
  | st, touched ->
      if
        ISet.exists
          (fun x ->
            IMap.mem x st.nodes && node_clash ctx st x
            && (prov_record_node ctx st x; true))
          touched
      then None
      else begin
        if ctx.stats.branches_explored > ctx.max_branches then begin
          let msg =
            Printf.sprintf "branch limit %d exceeded" ctx.max_branches
          in
          if !Flight.on then Flight.trip msg;
          raise (Resource_limit msg)
        end;
        let choice, st = find_choice ctx st in
        match choice with
        | Some (Disjunction (x, ds)) ->
            (* semantic branching: later alternatives assert the negation
               of the ones already refuted, so subproblems don't overlap *)
            let rec try_branches negs = function
              | [] -> None
              | d :: rest -> (
                  ctx.stats.branches_explored <-
                    ctx.stats.branches_explored + 1;
                  Obs.incr c_branches;
                  if !Flight.on then
                    Flight.record "branch" x (List.length rest) "or";
                  match expand ctx (add_labels st x (d :: negs)) with
                  | Some _ as r -> r
                  | None ->
                      backtracked ctx x;
                      try_branches (Concept.nnf (Concept.Not d) :: negs) rest)
            in
            try_branches [] ds
        | Some (Merge_pairs pairs) ->
            List.find_map
              (fun (src, dst) ->
                ctx.stats.branches_explored <- ctx.stats.branches_explored + 1;
                Obs.incr c_branches;
                if !Flight.on then Flight.record "branch" src dst "merge";
                prov_record_node ctx st src;
                prov_record_node ctx st dst;
                match merge ctx st ~src ~dst with
                | Some st' -> (
                    match expand ctx st' with
                    | Some _ as r -> r
                    | None ->
                        backtracked ctx src;
                        None)
                | None ->
                    clash_hit ctx x_merge src;
                    backtracked ctx src;
                    None)
              pairs
        | Some (Nominal_choice (x, os)) ->
            List.find_map
              (fun o ->
                ctx.stats.branches_explored <- ctx.stats.branches_explored + 1;
                Obs.incr c_branches;
                if !Flight.on then Flight.record "branch" x (-1) "nominal";
                match expand ctx (add_labels st x [ Concept.One_of [ o ] ]) with
                | Some _ as r -> r
                | None ->
                    backtracked ctx x;
                    None)
              os
        | None -> (
            match find_generating ctx st with
            | Some apply, st -> expand ctx (apply st)
            | None, st ->
                if data_ok ctx st then Some st
                else begin
                  clash_hit ctx x_data (-1);
                  None
                end)
      end

(* ------------------------------------------------------------------ *)
(* Preprocessing: absorption and internalization *)

let rec conjuncts (c : Concept.t) =
  match c with And (a, b) -> conjuncts a @ conjuncts b | c -> [ c ]

let preprocess_tbox tbox =
  List.fold_left
    (fun (unfold, gcis) ax ->
      match ax with
      | Axiom.Concept_sub (c, d) -> (
          let cs = conjuncts c in
          match
            List.partition (function Concept.Atom _ -> true | _ -> false) cs
          with
          | Concept.Atom a :: extra_atoms, rest ->
              (* absorb into A ⊑ nnf(¬(rest ⊓ extras) ⊔ D) *)
              let residue = extra_atoms @ rest in
              let rhs =
                if residue = [] then Concept.nnf d
                else
                  Concept.nnf
                    (Concept.Or (Concept.Not (Concept.conj residue), d))
              in
              let cur =
                match SMap.find_opt a unfold with Some l -> l | None -> []
              in
              (SMap.add a (rhs :: cur) unfold, gcis)
          | _ ->
              let gci = Concept.nnf (Concept.Or (Concept.Not c, d)) in
              (unfold, gci :: gcis))
      | Axiom.Role_sub _ | Axiom.Data_role_sub _ | Axiom.Transitive _ ->
          (unfold, gcis))
    (SMap.empty, []) tbox

let initial_state ctx (kb : Axiom.kb) =
  let st =
    { nodes = IMap.empty;
      edges = EMap.empty;
      succs = IMap.empty;
      preds = IMap.empty;
      distinct = IMap.empty;
      names = SMap.empty;
      next_id = 0;
      dirty = ISet.empty;
      open_or = ISet.empty;
      counting = ISet.empty;
      gen_pending = ISet.empty }
  in
  let get_node st a =
    (* Note: merely naming an individual does NOT enter it into the run's
       provenance — only rule firings, merges and clashes do (see
       [saturate]); told-only individuals are handled by the component
       closure on the invalidation side. *)
    match SMap.find_opt a st.names with
    | Some x -> (x, st)
    | None ->
        let x, st = new_node ctx st ~parent:None ~labels:[] in
        (x, { st with names = SMap.add a x st.names })
  in
  let st =
    List.fold_left
      (fun st ax ->
        match (ax : Axiom.abox_axiom) with
        | Instance_of (a, c) ->
            let x, st = get_node st a in
            add_labels st x [ Concept.nnf c ]
        | Role_assertion (a, r, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            let x, y, r =
              match r with Role.Inv s -> (y, x, Role.Name s) | _ -> (x, y, r)
            in
            add_edge_label st x y (RSet.singleton r)
        | Data_assertion (a, u, v) ->
            let x, st = get_node st a in
            let n = node st x in
            { st with
              nodes =
                IMap.add x
                  { n with data_asserted = (u, v) :: n.data_asserted }
                  st.nodes }
        | Same (a, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            (match merge ctx st ~src:y ~dst:x with
            | Some st -> st
            | None ->
                clash_hit ctx x_merge x;
                (match ctx.prov with
                | Some p ->
                    prov_add_ind p a;
                    prov_add_ind p b
                | None -> ());
                raise Clashed)
        | Different (a, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            add_distinct st x y)
      st kb.abox
  in
  (* non-empty domain *)
  if IMap.is_empty st.nodes then
    let _, st = new_node ctx st ~parent:None ~labels:[] in
    st
  else st

(* ------------------------------------------------------------------ *)
(* Blocking signals and prepared (cached) preprocessing.

   A [prep] caches everything about a KB that does not change between
   tableau runs: absorption ([unfold]/[gcis]), the role hierarchy and the
   blocking-relevant expressivity signals of the TBox and the base ABox.
   Reasoners keep one [prep] per KB and refresh it incrementally when a
   delta arrives, instead of re-running absorption, [Hierarchy.build] and
   the full signal scan on every single tableau call. *)

(* Expressivity signals deciding the blocking strategy. *)
type signals = { s_inverse : bool; s_at_most : bool }

let no_signals = { s_inverse = false; s_at_most = false }

let join_signals a b =
  { s_inverse = a.s_inverse || b.s_inverse;
    s_at_most = a.s_at_most || b.s_at_most }

let concept_signals acc c =
  List.fold_left
    (fun acc (sub : Concept.t) ->
      match sub with
      | Exists (Role.Inv _, _)
      | Forall (Role.Inv _, _)
      | At_least (_, Role.Inv _) ->
          { acc with s_inverse = true }
      | At_most (_, r) ->
          { s_at_most = true; s_inverse = acc.s_inverse || Role.is_inverse r }
      | _ -> acc)
    acc
    (Concept.subconcepts c)

let tbox_axiom_signals acc (ax : Axiom.tbox_axiom) =
  match ax with
  | Axiom.Concept_sub (c, d) ->
      (* negation can flip ≤ into ≥ and vice versa *)
      let acc = concept_signals acc (Concept.nnf c) in
      let acc = concept_signals acc (Concept.nnf d) in
      let acc = concept_signals acc (Concept.nnf (Concept.Not c)) in
      concept_signals acc (Concept.nnf (Concept.Not d))
  | Axiom.Role_sub (r, s) ->
      if Role.is_inverse r || Role.is_inverse s then
        { acc with s_inverse = true }
      else acc
  | Axiom.Data_role_sub _ | Axiom.Transitive _ -> acc

let abox_axiom_signals acc (ax : Axiom.abox_axiom) =
  match ax with
  | Axiom.Instance_of (_, c) -> concept_signals acc (Concept.nnf c)
  | Axiom.Role_assertion (_, r, _) ->
      if Role.is_inverse r then { acc with s_inverse = true } else acc
  | Axiom.Data_assertion _ | Axiom.Same _ | Axiom.Different _ -> acc

let blocking_of { s_inverse; s_at_most } =
  if s_inverse then Pairwise else if s_at_most then Equal else Subset

type prep = {
  p_kb : Axiom.kb;
  p_unfold : Concept.t list SMap.t;
  p_gcis : Concept.t list;
  p_h : Hierarchy.t;
  p_tbox_sig : signals;
  p_abox_sig : signals;
}

let prep_kb p = p.p_kb

let prepare (kb : Axiom.kb) =
  let unfold, gcis = preprocess_tbox kb.tbox in
  { p_kb = kb;
    p_unfold = unfold;
    p_gcis = gcis;
    p_h = Hierarchy.build kb.tbox;
    p_tbox_sig = List.fold_left tbox_axiom_signals no_signals kb.tbox;
    p_abox_sig = List.fold_left abox_axiom_signals no_signals kb.abox }

let prep_with_abox p abox =
  { p with
    p_kb = { p.p_kb with abox };
    p_abox_sig = List.fold_left abox_axiom_signals no_signals abox }

let prep_add_tbox p axs =
  if axs = [] then p
  else begin
    let tbox = p.p_kb.Axiom.tbox @ axs in
    (* absorption folds left-to-right from the cached maps — appending
       axioms extends [unfold]/[gcis] exactly as a from-scratch pass over
       the concatenated TBox would *)
    let unfold, gcis =
      List.fold_left
        (fun (unfold, gcis) ax ->
          match ax with
          | Axiom.Concept_sub (c, d) -> (
              let cs = conjuncts c in
              match
                List.partition
                  (function Concept.Atom _ -> true | _ -> false)
                  cs
              with
              | Concept.Atom a :: extra_atoms, rest ->
                  let residue = extra_atoms @ rest in
                  let rhs =
                    if residue = [] then Concept.nnf d
                    else
                      Concept.nnf
                        (Concept.Or (Concept.Not (Concept.conj residue), d))
                  in
                  let cur =
                    match SMap.find_opt a unfold with
                    | Some l -> l
                    | None -> []
                  in
                  (SMap.add a (rhs :: cur) unfold, gcis)
              | _ ->
                  let gci = Concept.nnf (Concept.Or (Concept.Not c, d)) in
                  (unfold, gci :: gcis))
          | Axiom.Role_sub _ | Axiom.Data_role_sub _ | Axiom.Transitive _ ->
              (unfold, gcis))
        (p.p_unfold, p.p_gcis) axs
    in
    { p_kb = { p.p_kb with tbox };
      p_unfold = unfold;
      p_gcis = gcis;
      p_h = Hierarchy.build tbox;
      p_tbox_sig = List.fold_left tbox_axiom_signals p.p_tbox_sig axs;
      p_abox_sig = p.p_abox_sig }
  end

(* The absorbed atomic left-hand side of a TBox axiom, when [preprocess_tbox]
   / [prep_add_tbox] would absorb it rather than internalize it as a GCI.
   Exposed so the invalidation layer can decide, with the exact same test,
   whether a monotone TBox addition is local to one lazily-unfolded atom. *)
let absorbable_lhs (ax : Axiom.tbox_axiom) =
  match ax with
  | Axiom.Concept_sub (c, _) -> (
      match
        List.partition
          (function Concept.Atom _ -> true | _ -> false)
          (conjuncts c)
      with
      | Concept.Atom a :: _, _ -> Some a
      | _ -> None)
  | Axiom.Role_sub _ | Axiom.Data_role_sub _ | Axiom.Transitive _ -> None

let completed_state_prep ?(max_nodes = 20_000) ?(max_branches = max_int)
    ?(stats = fresh_stats ()) ?prov prep extra =
  Obs.incr c_runs;
  stats.runs <- stats.runs + 1;
  let sp = Obs.enter ~cat:"tableau" "tableau.run" in
  if !Flight.on then Flight.record "run.start" (-1) (-1) "";
  let b0 = stats.branches_explored
  and n0 = stats.nodes_created
  and m0 = stats.merges in
  let finish outcome =
    if Obs.live sp then begin
      Obs.set_attr sp "nodes" (string_of_int (stats.nodes_created - n0));
      Obs.set_attr sp "branches" (string_of_int (stats.branches_explored - b0));
      Obs.set_attr sp "merges" (string_of_int (stats.merges - m0));
      Obs.set_attr sp "sat"
        (match outcome with Some _ -> "true" | None -> "false");
      Obs.incr (match outcome with Some _ -> c_sat | None -> c_unsat)
    end;
    if !Flight.on then
      Flight.record "run.end" (-1) (-1)
        (match outcome with Some _ -> "sat" | None -> "unsat");
    Obs.exit_timed sp h_run
  in
  match
    let kb =
      if extra = [] then prep.p_kb
      else { prep.p_kb with abox = prep.p_kb.Axiom.abox @ extra }
    in
    let sg =
      List.fold_left abox_axiom_signals
        (join_signals prep.p_tbox_sig prep.p_abox_sig)
        extra
    in
    let ctx =
      { h = prep.p_h;
        unfold = prep.p_unfold;
        gcis = prep.p_gcis;
        blocking = blocking_of sg;
        max_nodes;
        max_branches;
        stats;
        prov }
    in
    match initial_state ctx kb with
    | exception Clashed -> (ctx, kb, None)
    | st -> (ctx, kb, expand ctx st)
  with
  | (_, _, outcome) as r ->
      finish outcome;
      r
  | exception e ->
      if Obs.live sp then Obs.set_attr sp "exn" (Printexc.to_string e);
      Obs.exit_timed sp h_run;
      raise e

let completed_state ?max_nodes ?max_branches ?stats ?prov (kb : Axiom.kb) =
  let ctx, _, outcome =
    completed_state_prep ?max_nodes ?max_branches ?stats ?prov (prepare kb) []
  in
  (ctx, outcome)

let prepared_satisfiable ?max_nodes ?max_branches ?stats ?prov prep extra =
  let _, _, outcome =
    completed_state_prep ?max_nodes ?max_branches ?stats ?prov prep extra
  in
  Option.is_some outcome

let kb_satisfiable ?max_nodes ?max_branches ?stats ?prov kb =
  Option.is_some (snd (completed_state ?max_nodes ?max_branches ?stats ?prov kb))

(* ------------------------------------------------------------------ *)
(* Model extraction.

   From a complete clash-free completion graph we build a finite candidate
   model: blocked branches are tied back to their blocking witnesses, role
   extensions are closed under the role hierarchy and declared
   transitivity, and datatype successors come from the local solver's
   witness assignment.  The SH(O)IN(D) family does not enjoy the finite
   model property, so the construction can fail; the candidate is therefore
   VERIFIED against the knowledge base and returned only when it checks
   out. *)

module SSet = Set.Make (String)

let transitive_closure pairs =
  let rec fix ps =
    let ps' =
      Interp.PSet.fold
        (fun (x, y) acc ->
          Interp.PSet.fold
            (fun (y', z) acc ->
              if y = y' then Interp.PSet.add (x, z) acc else acc)
            ps acc)
        ps ps
    in
    if Interp.PSet.equal ps ps' then ps else fix ps'
  in
  fix pairs

let extract_model ctx (kb : Axiom.kb) st =
  let all_blocked, witness = compute_blocking ctx st in
  (* Directly blocked nodes are KEPT as domain elements (they may be needed
     as distinct ≥-successors); they satisfy their constraints by mirroring
     the outgoing edges of their blocking witness.  Only the subtrees below
     them (indirectly blocked nodes) are dropped. *)
  let directly_blocked x = IMap.mem x witness in
  let keep x = (not (ISet.mem x all_blocked)) || directly_blocked x in
  (* surviving directed edges with their role labels *)
  let kept_edges =
    EMap.fold
      (fun (a, b) rs acc ->
        if keep a && keep b && not (directly_blocked a) then
          ((a, b), rs) :: acc
        else acc)
      st.edges []
  in
  (* base extensions per atomic role name *)
  let base =
    List.fold_left
      (fun m ((a, b), rs) ->
        RSet.fold
          (fun r m ->
            let name, edge =
              match r with
              | Role.Name s -> (s, (a, b))
              | Role.Inv s -> (s, (b, a))
            in
            let cur =
              match SMap.find_opt name m with
              | Some ps -> ps
              | None -> Interp.PSet.empty
            in
            SMap.add name (Interp.PSet.add edge cur) m)
          rs m)
      SMap.empty kept_edges
  in
  (* each directly blocked node mirrors its witness's outgoing edges *)
  let base =
    IMap.fold
      (fun x y m ->
        SMap.map
          (fun ps ->
            Interp.PSet.fold
              (fun (a, b) ps -> if a = y then Interp.PSet.add (x, b) ps else ps)
              ps ps)
          m)
      witness base
  in
  let base_ext r =
    (* extension of a possibly-inverse role from the base edges *)
    match r with
    | Role.Name s -> (
        match SMap.find_opt s base with
        | Some ps -> ps
        | None -> Interp.PSet.empty)
    | Role.Inv s -> (
        match SMap.find_opt s base with
        | Some ps -> Interp.PSet.map (fun (x, y) -> (y, x)) ps
        | None -> Interp.PSet.empty)
  in
  let role_names =
    SSet.union
      (SSet.of_list (SMap.fold (fun k _ acc -> k :: acc) base []))
      (SSet.of_list (Axiom.signature kb).roles)
  in
  (* E(R) = edges of all subroles of R; the canonical extension adds the
     transitive closure of E(T) for every transitive T ⊑* R *)
  let sub_edges r =
    SSet.fold
      (fun name acc ->
        List.fold_left
          (fun acc t ->
            if Hierarchy.sub_of ctx.h t r then
              Interp.PSet.union acc (base_ext t)
            else acc)
          acc
          [ Role.Name name; Role.Inv name ])
      role_names Interp.PSet.empty
  in
  let canonical_ext name =
    let direct = sub_edges (Role.Name name) in
    SSet.fold
      (fun sub acc ->
        List.fold_left
          (fun acc t ->
            if Hierarchy.transitive ctx.h t && Hierarchy.sub_of ctx.h t (Role.Name name)
            then Interp.PSet.union acc (transitive_closure (sub_edges t))
            else acc)
          acc
          [ Role.Name sub; Role.Inv sub ])
      role_names direct
  in
  let roles =
    SSet.fold
      (fun name m -> Interp.SMap.add name (canonical_ext name) m)
      role_names Interp.SMap.empty
  in
  (* concept extensions from the node labels *)
  let concepts =
    IMap.fold
      (fun x n m ->
        if keep x then
          CSet.fold
            (fun c m ->
              match (c : Concept.t) with
              | Atom a ->
                  let cur =
                    match Interp.SMap.find_opt a m with
                    | Some s -> s
                    | None -> Interp.ESet.empty
                  in
                  Interp.SMap.add a (Interp.ESet.add x cur) m
              | _ -> m)
            n.labels m
        else m)
      st.nodes Interp.SMap.empty
  in
  (* datatype successors from the local solver's witness assignments *)
  let exception No_data in
  match
    IMap.fold
      (fun x n (data_roles, values) ->
        if keep x then
          match
            Datacheck.solve
              ~data_supers:(Hierarchy.data_supers ctx.h)
              ~asserted:n.data_asserted
              ~constraints:(CSet.elements n.labels)
          with
          | None -> raise No_data
          | Some assignment ->
              ( List.fold_left
                  (fun m (u, v) ->
                    let cur =
                      match Interp.SMap.find_opt u m with
                      | Some s -> s
                      | None -> Interp.VSet.empty
                    in
                    Interp.SMap.add u (Interp.VSet.add (x, v) cur) m)
                  data_roles assignment,
                List.fold_left (fun vs (_, v) -> v :: vs) values assignment )
        else (data_roles, values))
      st.nodes (Interp.SMap.empty, [])
  with
  | exception No_data -> None
  | data_roles, values ->
      (* data-role hierarchy closure on the assignments *)
      let data_roles =
        Interp.SMap.fold
          (fun u ext m ->
            List.fold_left
              (fun m v ->
                let cur =
                  match Interp.SMap.find_opt v m with
                  | Some s -> s
                  | None -> Interp.VSet.empty
                in
                Interp.SMap.add v (Interp.VSet.union cur ext) m)
              m
              (Hierarchy.data_supers ctx.h u))
          data_roles data_roles
      in
      let domain =
        IMap.fold
          (fun x _ acc -> if keep x then Interp.ESet.add x acc else acc)
          st.nodes Interp.ESet.empty
      in
      let candidate =
        { Interp.domain;
          data_domain = List.sort_uniq Datatype.compare_value values;
          concepts;
          roles;
          data_roles;
          individuals =
            SMap.fold (fun k v m -> Interp.SMap.add k v m) st.names
              Interp.SMap.empty }
      in
      if Interp.is_model candidate kb then Some candidate else None

let kb_model ?max_nodes ?max_branches ?stats ?prov kb =
  match completed_state ?max_nodes ?max_branches ?stats ?prov kb with
  | _, None -> None
  | ctx, Some st -> extract_model ctx kb st

let prepared_model ?max_nodes ?max_branches ?stats ?prov prep extra =
  match completed_state_prep ?max_nodes ?max_branches ?stats ?prov prep extra with
  | _, _, None -> None
  | ctx, kb, Some st -> extract_model ctx kb st
