(** Tableau decision procedure for [SHOIN(D)] knowledge-base satisfiability.

    A from-scratch completion-graph tableau in the style of Horrocks &
    Sattler's algorithms for the SH* family:

    - negation normal form on entry; lazy unfolding of absorbed
      atomic-left-hand-side axioms, remaining GCIs internalized as
      disjunctions added to every node;
    - role hierarchies (closed under inverses) and transitive roles with the
      ∀₊ propagation rule;
    - inverse roles with {e pairwise} ancestor blocking;
    - unqualified number restrictions with distinctness constraints, merging
      (with pruning) and (n+1)-clique clash detection;
    - nominals by merging into named root nodes (negated nominals as
      distinctness constraints);
    - datatypes via the local per-node solver in {!Datacheck};
    - ABox reasoning: individuals are root nodes; [=]/[≠] become merges and
      distinctness constraints.

    Completeness envelope: complete for [SHIN(D)] and for nominals that
    interact with inverses/number restrictions only through merging (no
    NN-rule: the full [SHOIN] corner published after the reproduced paper is
    out of scope — see DESIGN.md).  Number restrictions are expected to use
    simple roles (no transitive subroles), the standard [SHOIN] restriction;
    {!Reasoner.validate} reports violations.

    Nondeterminism is explored by chronological backtracking over immutable
    states; [max_nodes] bounds the completion graph and {!Resource_limit} is
    raised when exceeded. *)

exception Resource_limit of string

type stats = {
  mutable branches_explored : int;
  mutable nodes_created : int;
  mutable merges : int;
}

type prov
(** Per-run provenance accumulator: the named individuals and (demangled)
    atomic concepts a tableau run touched, including work on branches that
    were later backtracked.  Fresh query artefacts (names containing [':'],
    e.g. [q:fresh]) are excluded, so runs over reduced KBs report exactly
    the user-level names.  Feeds the oracle's per-verdict dependency
    tracking (selective cache invalidation, span attributes). *)

val fresh_prov : unit -> prov

val prov_individuals : prov -> string list
(** Sorted, deduplicated. *)

val prov_concepts : prov -> string list
(** Sorted, deduplicated. *)

val kb_satisfiable :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  Axiom.kb -> bool
(** Decides satisfiability of the knowledge base.
    @raise Resource_limit if the completion graph exceeds [max_nodes]
    (default 20_000) or the search explores more than [max_branches]
    alternatives (default unlimited; chronological backtracking is
    worst-case exponential). *)

val kb_model :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  Axiom.kb -> Interp.t option
(** Extract a finite model from an open tableau branch: blocked branches
    are tied back to their blocking witnesses, role extensions are closed
    under the hierarchy and declared transitivity, datatype successors come
    from the concrete-domain solver's witnesses.  The result is {e
    verified} with {!Interp.is_model} before being returned, so [Some i]
    really is a model.  [None] means the KB is unsatisfiable {e or} no
    finite model could be constructed this way (the [SHIN] family lacks the
    finite model property).
    @raise Resource_limit as {!kb_satisfiable}. *)

val fresh_stats : unit -> stats
