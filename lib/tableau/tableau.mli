(** Tableau decision procedure for [SHOIN(D)] knowledge-base satisfiability.

    A from-scratch completion-graph tableau in the style of Horrocks &
    Sattler's algorithms for the SH* family:

    - negation normal form on entry; lazy unfolding of absorbed
      atomic-left-hand-side axioms, remaining GCIs internalized as
      disjunctions added to every node;
    - role hierarchies (closed under inverses) and transitive roles with the
      ∀₊ propagation rule;
    - inverse roles with {e pairwise} ancestor blocking;
    - unqualified number restrictions with distinctness constraints, merging
      (with pruning) and (n+1)-clique clash detection;
    - nominals by merging into named root nodes (negated nominals as
      distinctness constraints);
    - datatypes via the local per-node solver in {!Datacheck};
    - ABox reasoning: individuals are root nodes; [=]/[≠] become merges and
      distinctness constraints.

    Completeness envelope: complete for [SHIN(D)] and for nominals that
    interact with inverses/number restrictions only through merging (no
    NN-rule: the full [SHOIN] corner published after the reproduced paper is
    out of scope — see DESIGN.md).  Number restrictions are expected to use
    simple roles (no transitive subroles), the standard [SHOIN] restriction;
    {!Reasoner.validate} reports violations.

    Nondeterminism is explored by chronological backtracking over immutable
    states; [max_nodes] bounds the completion graph and {!Resource_limit} is
    raised when exceeded. *)

exception Resource_limit of string

val rule_names : string array
(** The expansion-rule kinds, in the index order used by
    [stats.rule_firings], the ["tableau.rule.<name>"] registry counters
    and the flight recorder's ["rule.<name>"] event kinds. *)

type stats = {
  mutable runs : int;  (** tableau runs started *)
  mutable branches_explored : int;
  mutable nodes_created : int;
  mutable merges : int;
  mutable clashes : int;  (** all causes, including merge/data clashes *)
  mutable backtracks : int;
  mutable blocking_events : int;
  rule_firings : int array;  (** indexed like {!rule_names} *)
}
(** Per-run work accounting.  Unlike the registry counters (gated on
    [Obs.on]), these cells are bumped unconditionally: the oracle's
    per-verdict cost records diff them around each run, with no sink
    armed. *)

type prov
(** Per-run provenance accumulator — the dependency set of a verdict, fed
    to the oracle's selective cache invalidation (and span attributes).

    {b Individuals} are recorded {e selectively}: a named individual
    enters the provenance only when a rule fired on its node, it took part
    in a merge or a distinctness constraint, or its node clashed.  Told
    assertions that never interact with the query record nothing — the
    eviction side covers those through the told ABox's connected-component
    closure, so small provenance directly translates into more retained
    verdicts.

    {b Atoms} are recorded {e coarsely}: every top-level (possibly
    negated) atomic concept of every touched node's label, demangled to
    the user-level name.  TBox-delta retention relies on "this atom never
    appeared in any label during the run", so the atom harvest must cover
    all labels, including branches that were later backtracked.

    Fresh query artefacts (names containing [':'], e.g. [q:fresh]) are
    excluded, so runs over reduced KBs report only user-level names. *)

val fresh_prov : unit -> prov

val prov_individuals : prov -> string list
(** Sorted, deduplicated. *)

val prov_concepts : prov -> string list
(** Sorted, deduplicated. *)

val prov_add_ind : prov -> string -> unit
(** Manually record an individual (names containing [':'] are ignored).
    Used by the oracle to seed a verdict's provenance with the query's own
    subjects before the run. *)

val prov_add_atom : prov -> string -> unit
(** Manually record an atomic concept, demangled to its user-level origin
    ([A⁺]/[A⁻] both record [A]; plain names containing [':'] are
    ignored). *)

(** {1 Prepared (cached) preprocessing}

    Absorption, GCI internalization, the role hierarchy and the
    blocking-strategy signals depend only on the KB, not on the query —
    a {!prep} computes them once so repeated tableau runs (every verdict
    of a reasoning session) stop paying them, and KB deltas refresh them
    incrementally instead of from scratch. *)

type prep

val prepare : Axiom.kb -> prep

val prep_kb : prep -> Axiom.kb

val prep_with_abox : prep -> Axiom.abox_axiom list -> prep
(** Replace the base ABox (rescans only the ABox blocking signals; all
    TBox preprocessing is reused). *)

val prep_add_tbox : prep -> Axiom.tbox_axiom list -> prep
(** Append monotone TBox additions: new axioms are absorbed/internalized
    into the cached unfolding maps exactly as a from-scratch pass over the
    concatenated TBox would, and the role hierarchy is rebuilt. *)

val absorbable_lhs : Axiom.tbox_axiom -> string option
(** The atomic left-hand side under which the preprocessor would absorb
    this axiom for lazy unfolding, or [None] if it is internalized as a
    GCI (or is a role axiom).  The invalidation layer uses this exact test
    to decide whether a TBox addition is local to one atom. *)

val prepared_satisfiable :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  prep -> Axiom.abox_axiom list -> bool
(** [prepared_satisfiable prep extra] decides satisfiability of the
    prepared KB extended with the [extra] ABox assertions (the query).
    Equivalent to {!kb_satisfiable} on the merged KB, without re-running
    preprocessing.  Blocking signals of [extra] are scanned per call and
    joined with the cached ones, so the strategy choice is identical.
    @raise Resource_limit as {!kb_satisfiable}. *)

val prepared_model :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  prep -> Axiom.abox_axiom list -> Interp.t option
(** Prepared counterpart of {!kb_model}. *)

val kb_satisfiable :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  Axiom.kb -> bool
(** Decides satisfiability of the knowledge base.
    @raise Resource_limit if the completion graph exceeds [max_nodes]
    (default 20_000) or the search explores more than [max_branches]
    alternatives (default unlimited; chronological backtracking is
    worst-case exponential). *)

val kb_model :
  ?max_nodes:int -> ?max_branches:int -> ?stats:stats -> ?prov:prov ->
  Axiom.kb -> Interp.t option
(** Extract a finite model from an open tableau branch: blocked branches
    are tied back to their blocking witnesses, role extensions are closed
    under the hierarchy and declared transitivity, datatype successors come
    from the concrete-domain solver's witnesses.  The result is {e
    verified} with {!Interp.is_model} before being returned, so [Some i]
    really is a model.  [None] means the KB is unsatisfiable {e or} no
    finite model could be constructed this way (the [SHIN] family lacks the
    finite model property).
    @raise Resource_limit as {!kb_satisfiable}. *)

val fresh_stats : unit -> stats

val copy_stats : stats -> stats
(** A snapshot (deep copy, including the firing array) — the "before"
    half of a per-run diff. *)
