let plus_role = function
  | Role.Name r -> Role.Name (Mangle.plus_role r)
  | Role.Inv r -> Role.Inv (Mangle.plus_role r)

let eq_role = function
  | Role.Name r -> Role.Name (Mangle.eq_role r)
  | Role.Inv r -> Role.Inv (Mangle.eq_role r)

(* Fresh unconstrained atom standing for the (information-free) negative part
   of a nominal; ':' cannot occur in surface-syntax identifiers. *)
let nominal_complement_atom os = "nom:" ^ String.concat "," os ^ "-"

let rec concept_pos (c : Concept.t) : Concept.t =
  match c with
  | Atom a -> Atom (Mangle.pos_atom a)
  | Top -> Top
  | Bottom -> Bottom
  | Not d -> concept_neg d
  | And (a, b) -> And (concept_pos a, concept_pos b)
  | Or (a, b) -> Or (concept_pos a, concept_pos b)
  | One_of os -> One_of os
  | Exists (r, d) -> Exists (plus_role r, concept_pos d)
  | Forall (r, d) -> Forall (plus_role r, concept_pos d)
  | At_least (n, r) -> At_least (n, plus_role r)
  | At_most (n, r) -> At_most (n, eq_role r)
  | Data_exists (u, d) -> Data_exists (Mangle.plus_role u, d)
  | Data_forall (u, d) -> Data_forall (Mangle.plus_role u, d)
  | Data_at_least (n, u) -> Data_at_least (n, Mangle.plus_role u)
  | Data_at_most (n, u) -> Data_at_most (n, Mangle.eq_role u)

and concept_neg (c : Concept.t) : Concept.t =
  match c with
  | Atom a -> Atom (Mangle.neg_atom a)
  | Top -> Bottom
  | Bottom -> Top
  | Not d -> concept_pos d
  | And (a, b) -> Or (concept_neg a, concept_neg b)
  | Or (a, b) -> And (concept_neg a, concept_neg b)
  | One_of os -> Atom (nominal_complement_atom os)
  | Exists (r, d) -> Forall (plus_role r, concept_neg d)
  | Forall (r, d) -> Exists (plus_role r, concept_neg d)
  | At_least (n, r) -> if n = 0 then Bottom else At_most (n - 1, eq_role r)
  | At_most (n, r) -> At_least (n + 1, plus_role r)
  | Data_exists (u, d) -> Data_forall (Mangle.plus_role u, Datatype.Complement d)
  | Data_forall (u, d) -> Data_exists (Mangle.plus_role u, Datatype.Complement d)
  | Data_at_least (n, u) ->
      if n = 0 then Bottom else Data_at_most (n - 1, Mangle.eq_role u)
  | Data_at_most (n, u) -> Data_at_least (n + 1, Mangle.plus_role u)

let tbox_axiom (ax : Kb4.tbox_axiom) : Axiom.tbox_axiom list =
  match ax with
  | Kb4.Concept_inclusion (Kb4.Material, c, d) ->
      [ Axiom.Concept_sub (Concept.Not (concept_neg c), concept_pos d) ]
  | Kb4.Concept_inclusion (Kb4.Internal, c, d) ->
      [ Axiom.Concept_sub (concept_pos c, concept_pos d) ]
  | Kb4.Concept_inclusion (Kb4.Strong, c, d) ->
      [ Axiom.Concept_sub (concept_pos c, concept_pos d);
        Axiom.Concept_sub (concept_neg d, concept_neg c) ]
  | Kb4.Role_inclusion (Kb4.Material, r, s) ->
      [ Axiom.Role_sub (eq_role r, plus_role s) ]
  | Kb4.Role_inclusion (Kb4.Internal, r, s) ->
      [ Axiom.Role_sub (plus_role r, plus_role s) ]
  | Kb4.Role_inclusion (Kb4.Strong, r, s) ->
      [ Axiom.Role_sub (plus_role r, plus_role s);
        Axiom.Role_sub (eq_role r, eq_role s) ]
  | Kb4.Data_role_inclusion (Kb4.Material, u, v) ->
      [ Axiom.Data_role_sub (Mangle.eq_role u, Mangle.plus_role v) ]
  | Kb4.Data_role_inclusion (Kb4.Internal, u, v) ->
      [ Axiom.Data_role_sub (Mangle.plus_role u, Mangle.plus_role v) ]
  | Kb4.Data_role_inclusion (Kb4.Strong, u, v) ->
      [ Axiom.Data_role_sub (Mangle.plus_role u, Mangle.plus_role v);
        Axiom.Data_role_sub (Mangle.eq_role u, Mangle.eq_role v) ]
  | Kb4.Transitive r -> [ Axiom.Transitive (Mangle.plus_role r) ]

let abox_axiom (ax : Axiom.abox_axiom) : Axiom.abox_axiom =
  match ax with
  | Axiom.Instance_of (a, c) -> Axiom.Instance_of (a, concept_pos c)
  | Axiom.Role_assertion (a, r, b) -> Axiom.Role_assertion (a, plus_role r, b)
  | Axiom.Data_assertion (a, u, v) ->
      Axiom.Data_assertion (a, Mangle.plus_role u, v)
  | Axiom.Same _ | Axiom.Different _ -> ax

let c_passes = Obs.counter "transform.passes"
let c_tbox_out = Obs.counter "transform.tbox_axioms"
let c_abox_out = Obs.counter "transform.abox_axioms"

let kb (k : Kb4.t) : Axiom.kb =
  let sp = Obs.enter ~cat:"transform" "transform.reduce" in
  let out =
    { Axiom.tbox = List.concat_map tbox_axiom k.tbox;
      abox = List.map abox_axiom k.abox }
  in
  Obs.incr c_passes;
  if Obs.live sp then begin
    Obs.add c_tbox_out (List.length out.Axiom.tbox);
    Obs.add c_abox_out (List.length out.Axiom.abox);
    Obs.set_attr sp "tbox" (string_of_int (List.length out.Axiom.tbox));
    Obs.set_attr sp "abox" (string_of_int (List.length out.Axiom.abox))
  end;
  Obs.exit_span sp;
  out

(* Incremental path: the reduction of Definition 7 is axiom-local (one
   four-valued axiom maps to one or two classical axioms, independently of
   the rest of the KB), so a delta against [K] translates by mapping only
   the delta's axioms — [K̄] is never re-transformed. *)

let abox_delta axs = List.map abox_axiom axs
let tbox_delta axs = List.concat_map tbox_axiom axs

let inclusion_tests kind c d =
  match kind with
  | Kb4.Material ->
      [ Concept.And
          (Concept.Not (concept_neg c), Concept.Not (concept_pos d)) ]
  | Kb4.Internal ->
      [ Concept.And (concept_pos c, Concept.Not (concept_pos d)) ]
  | Kb4.Strong ->
      [ Concept.And (concept_pos c, Concept.Not (concept_pos d));
        Concept.And (concept_neg d, Concept.Not (concept_neg c)) ]

let instance_query c a =
  Axiom.Instance_of (a, Concept.Not (concept_pos c))

let negative_instance_query c a =
  Axiom.Instance_of (a, Concept.Not (concept_neg c))
