(** The reduction of [SHOIN(D)4] to [SHOIN(D)] — Definitions 5–7 of §4.1 and
    the query compilation of Corollary 7.

    [concept_pos c] is the paper's [C̄]; [concept_neg c] is [(¬C)bar].  The
    transformed vocabulary uses the decorated names of {!Mangle}: [A⁺]/[A⁻]
    for atomic concepts, [R⁺]/[R⁼] for roles.  Individual renaming is the
    identity.  All transformations are linear-time in the size of the input
    (the paper notes "polynomial time").

    One clause is missing from the paper's Definition 5: the transformation
    of a negated nominal [¬{o₁,…}].  Table 2 gives [{o₁,…}] the value
    [<{o₁ᴵ,…}, N>] with [N] unconstrained, i.e. the negative part of a
    nominal carries no information; accordingly we map [¬{o₁,…}] to a fresh,
    unconstrained atomic concept (deterministically named from the nominal),
    which keeps the reduction sound.  See DESIGN.md. *)

val plus_role : Role.t -> Role.t
(** [R ↦ R⁺], commuting with inverse: [(R⁻)⁺ = (R⁺)⁻] (Def. 5(19)). *)

val eq_role : Role.t -> Role.t
(** [R ↦ R⁼], commuting with inverse. *)

val concept_pos : Concept.t -> Concept.t
(** [C̄] — Definition 5. *)

val concept_neg : Concept.t -> Concept.t
(** [(¬C)bar] — Definition 5's clauses for negated concepts. *)

val tbox_axiom : Kb4.tbox_axiom -> Axiom.tbox_axiom list
(** Definition 6(1–3).  Material inclusion yields [¬(¬C₁)bar ⊑ C̄₂]; strong
    inclusion yields two classical inclusions. *)

val abox_axiom : Axiom.abox_axiom -> Axiom.abox_axiom
(** Definition 6(4): [a : C ↦ ā : C̄]; role and data assertions move to the
    positive role ([R(a,b) ↦ R⁺(a,b)]); (in)equalities are unchanged. *)

val kb : Kb4.t -> Axiom.kb
(** The classical induced KB [K̄] (Definition 7). *)

(** {1 Incremental path}

    Definition 7 is axiom-local: [K̄]'s TBox is the concatenation of each
    four-valued TBox axiom's translation and its ABox the pointwise image
    of [K]'s ABox.  A delta against [K] therefore translates by mapping
    {e only the delta's axioms} — adding the images of added axioms and
    removing the images of retracted ones yields exactly [Transform.kb] of
    the updated [K], without re-transforming the rest. *)

val abox_delta : Axiom.abox_axiom list -> Axiom.abox_axiom list
(** Pointwise {!abox_axiom}. *)

val tbox_delta : Kb4.tbox_axiom list -> Axiom.tbox_axiom list
(** Concatenated {!tbox_axiom} images, in input order. *)

(** {1 Query compilation (Corollary 7 and instance queries)} *)

val inclusion_tests : Kb4.inclusion -> Concept.t -> Concept.t -> Concept.t list
(** [inclusion_tests kind c d] returns the classical concepts whose joint
    unsatisfiability w.r.t. [K̄] decides [C ⊑kind D] in [K]:
    material → [¬(¬C)bar ⊓ ¬C̄₂]; internal → [C̄ ⊓ ¬D̄]; strong → both the
    internal test and [(¬D)bar ⊓ ¬(¬C)bar]. *)

val instance_query : Concept.t -> string -> Axiom.abox_axiom
(** [instance_query c a]: the assertion [ā : ¬C̄] whose addition to [K̄]
    makes it inconsistent iff [K ⊨⁴ C(a)] ("is there information asserting
    that [a] is a [C]?"). *)

val negative_instance_query : Concept.t -> string -> Axiom.abox_axiom
(** The assertion [ā : ¬(¬C)bar] testing [K ⊨⁴ ¬C(a)] ("is there
    information asserting that [a] is {e not} a [C]?"). *)
