(* CI's audit-report validator: vets the "dl4-audit/1" JSON that `dl4
   audit` (and the serve daemon's [audit] op) emit.
   Usage: check_audit FILE — the file holds one report object per line.
   Exit 0 when every report is well-formed, 1 otherwise.

   Checks, per report: the schema tag; KB dimensions non-negative and
   consistent with the counts (the four per-value counts summing to the
   swept fact space |individuals × concepts| + |role facts|); decided =
   t + f + B; the inconsistency ratio in [0, 1] and equal to
   B / decided; per_concept covering each concept at most once with
   b_rate = B / decided per row; top lists sorted by descending B count
   and bounded by the census; the facts array (when an exactly filter
   was requested) carrying only values from the requested set. *)

let fail = ref false

let err fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("check_audit: " ^ s);
      fail := true)
    fmt

let str_field name j = Option.bind (Json_lite.member name j) Json_lite.to_str

let int_field name j =
  match Option.bind (Json_lite.member name j) Json_lite.to_num with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let num_field name j = Option.bind (Json_lite.member name j) Json_lite.to_num

let nonneg ~lineno ?label name j =
  match int_field name j with
  | Some n when n >= 0 -> n
  | _ ->
      err "line %d: %s must be a non-negative integer" lineno
        (Option.value ~default:name label);
      0

let value_labels = [ "t"; "f"; "B"; "N" ]

let check_report ~lineno j =
  (match str_field "schema" j with
  | Some "dl4-audit/1" -> ()
  | Some s -> err "line %d: unknown schema %S" lineno s
  | None -> err "line %d: missing schema" lineno);
  let kb =
    match Json_lite.member "kb" j with
    | Some kb -> kb
    | None ->
        err "line %d: missing kb object" lineno;
        Json_lite.Obj []
  in
  let individuals = nonneg ~lineno ~label:"kb.individuals" "individuals" kb in
  let concepts = nonneg ~lineno ~label:"kb.concepts" "concepts" kb in
  let role_facts = nonneg ~lineno ~label:"kb.role_facts" "role_facts" kb in
  ignore (nonneg ~lineno ~label:"kb.tbox_axioms" "tbox_axioms" kb : int);
  ignore (nonneg ~lineno ~label:"kb.abox_axioms" "abox_axioms" kb : int);
  let swept = (individuals * concepts) + role_facts in
  let counts =
    match Json_lite.member "counts" j with
    | Some c -> c
    | None ->
        err "line %d: missing counts object" lineno;
        Json_lite.Obj []
  in
  (match counts with
  | Json_lite.Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k value_labels) then
            err "line %d: counts key %S outside the value vocabulary" lineno k)
        fields
  | _ -> err "line %d: counts must be an object" lineno);
  let count v = nonneg ~lineno ~label:("counts." ^ v) v counts in
  let ct = count "t" and cf = count "f" and cb = count "B" and cn = count "N" in
  if ct + cf + cb + cn <> swept then
    err "line %d: counts sum to %d but the sweep is %d facts" lineno
      (ct + cf + cb + cn) swept;
  let decided = nonneg ~lineno "decided" j in
  if decided <> ct + cf + cb then
    err "line %d: decided %d is not t+f+B = %d" lineno decided (ct + cf + cb);
  (match num_field "inconsistency_ratio" j with
  | Some r ->
      if r < 0.0 || r > 1.0 then
        err "line %d: inconsistency_ratio %g outside [0, 1]" lineno r;
      let expect =
        if decided = 0 then 0.0 else float_of_int cb /. float_of_int decided
      in
      if Float.abs (r -. expect) > 1e-6 then
        err "line %d: inconsistency_ratio %g but B/decided is %g" lineno r
          expect
  | None -> err "line %d: missing inconsistency_ratio" lineno);
  (match Option.bind (Json_lite.member "per_concept" j) Json_lite.to_list with
  | None -> err "line %d: missing per_concept array" lineno
  | Some rows ->
      if List.length rows <> concepts then
        err "line %d: per_concept has %d rows for %d concepts" lineno
          (List.length rows) concepts;
      let seen = Hashtbl.create 16 in
      List.iteri
        (fun i row ->
          let ctx = Printf.sprintf "line %d per_concept %d" lineno i in
          (match str_field "concept" row with
          | Some c when c <> "" ->
              if Hashtbl.mem seen c then err "%s: duplicate concept %S" ctx c;
              Hashtbl.replace seen c ()
          | _ -> err "%s: missing concept name" ctx);
          let b =
            match int_field "B" row with
            | Some n when n >= 0 -> n
            | _ ->
                err "%s: B must be a non-negative integer" ctx;
                0
          in
          let d =
            match int_field "decided" row with
            | Some n when n >= b -> n
            | _ ->
                err "%s: decided must be an integer >= B" ctx;
                max b 1
          in
          match num_field "b_rate" row with
          | Some r ->
              let expect =
                if d = 0 then 0.0 else float_of_int b /. float_of_int d
              in
              if Float.abs (r -. expect) > 1e-6 then
                err "%s: b_rate %g but B/decided is %g" ctx r expect
          | None -> err "%s: missing b_rate" ctx)
        rows);
  let check_top name ~key =
    match Option.bind (Json_lite.member name j) Json_lite.to_list with
    | None -> err "line %d: missing %s array" lineno name
    | Some rows ->
        let last = ref max_int in
        List.iteri
          (fun i row ->
            let ctx = Printf.sprintf "line %d %s %d" lineno name i in
            (match str_field key row with
            | Some s when s <> "" -> ()
            | _ -> err "%s: missing %s" ctx key);
            match int_field "B" row with
            | Some n when n >= 1 ->
                if n > !last then err "%s: not sorted by descending B" ctx;
                last := n
            | _ -> err "%s: B must be a positive integer" ctx)
          rows
  in
  check_top "top_individuals" ~key:"individual";
  check_top "top_concepts" ~key:"concept";
  (match Option.bind (Json_lite.member "top_individuals" j) Json_lite.to_list with
  | Some rows ->
      List.iteri
        (fun i row ->
          match Json_lite.member "provenance" row with
          | Some prov ->
              List.iter
                (fun field ->
                  match
                    Option.bind (Json_lite.member field prov) Json_lite.to_list
                  with
                  | Some _ -> ()
                  | None ->
                      err "line %d top_individuals %d: provenance lacks %s"
                        lineno i field)
                [ "individuals"; "concepts" ]
          | None ->
              err "line %d top_individuals %d: missing provenance" lineno i)
        rows
  | None -> ());
  match Json_lite.member "exactly" j with
  | None ->
      if Json_lite.member "facts" j <> None then
        err "line %d: facts array without an exactly filter" lineno
  | Some requested ->
      let allowed =
        match Json_lite.to_list requested with
        | Some l -> List.filter_map Json_lite.to_str l
        | None ->
            err "line %d: exactly must be an array" lineno;
            []
      in
      List.iter
        (fun v ->
          if not (List.mem v value_labels) then
            err "line %d: exactly value %S outside the vocabulary" lineno v)
        allowed;
      (* the facts carry long-form labels; map before checking *)
      let short = function
        | "t" -> "t" | "f" -> "f" | "TOP" -> "B" | "BOT" -> "N" | s -> s
      in
      (match Option.bind (Json_lite.member "facts" j) Json_lite.to_list with
      | None -> err "line %d: exactly filter without a facts array" lineno
      | Some facts ->
          List.iteri
            (fun i f ->
              let ctx = Printf.sprintf "line %d facts %d" lineno i in
              (match str_field "fact" f with
              | Some s when s <> "" -> ()
              | _ -> err "%s: missing fact" ctx);
              match str_field "value" f with
              | Some v when List.mem (short v) allowed -> ()
              | Some v -> err "%s: value %S outside the requested set" ctx v
              | None -> err "%s: missing value" ctx)
            facts)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: check_audit FILE";
        exit 2
  in
  let ic = open_in path in
  let lineno = ref 0 in
  let reports = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr reports;
         match Json_lite.parse line with
         | Error msg -> err "line %d: unparsable JSON: %s" !lineno msg
         | Ok j -> check_report ~lineno:!lineno j
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !reports = 0 then err "%s: no reports found" path;
  if !fail then exit 1;
  Printf.printf "check_audit: %s: %d report(s) OK\n" path !reports
