(* Standalone validator for flight-recorder dumps ("dl4-flight/1", from
   --flight FILE / DL4_FLIGHT / a resource-limit trip).  Used by CI to
   vet the dump produced by provoking a max-branches trip.

   Checks:
   - the file is a JSON object with schema "dl4-flight/1", a positive
     capacity, a non-negative overflow_dropped and a "domains" array;
   - every domain has a non-negative tid and total, dropped =
     max(0, total - capacity), and exactly min(total, capacity) events;
   - events are oldest-first: "ns" is non-negative and non-decreasing
     within each domain; every event carries a non-empty "kind";
   - at least one event exists overall (an empty dump means the
     recorder was never armed — a misconfigured provocation).

   Exit 0 on success with a one-line summary, 1 with diagnostics. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr errors;
      Printf.eprintf "check_flight: %s\n" s)
    fmt

let num name j =
  match Json_lite.member name j with
  | Some v -> (
      match Json_lite.to_num v with
      | Some x -> x
      | None ->
          fail "%S is not a number" name;
          Float.nan)
  | None ->
      fail "missing %S" name;
      Float.nan

let str name j =
  match Json_lite.member name j with
  | Some v -> (
      match Json_lite.to_str v with
      | Some s -> s
      | None ->
          fail "%S is not a string" name;
          "")
  | None ->
      fail "missing %S" name;
      ""

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: check_flight FILE";
        exit 2
  in
  let j =
    match Json_lite.parse (read_file path) with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "check_flight: %s: %s\n" path e;
        exit 1
  in
  let schema = str "schema" j in
  if schema <> "dl4-flight/1" then fail "unexpected schema %S" schema;
  let capacity = int_of_float (num "capacity" j) in
  if capacity <= 0 then fail "capacity %d not positive" capacity;
  let overflow = num "overflow_dropped" j in
  if overflow < 0.0 then fail "negative overflow_dropped";
  let domains =
    match Json_lite.member "domains" j with
    | Some (Json_lite.Arr l) -> l
    | _ ->
        fail "missing \"domains\" array";
        []
  in
  let total_events = ref 0 in
  List.iteri
    (fun di d ->
      let tid = int_of_float (num "tid" d) in
      if tid < 0 then fail "domain %d: negative tid" di;
      let total = int_of_float (num "total" d) in
      if total < 0 then fail "domain %d: negative total" di;
      let dropped = int_of_float (num "dropped" d) in
      if dropped <> max 0 (total - capacity) then
        fail "domain %d: dropped %d inconsistent with total %d, capacity %d"
          di dropped total capacity;
      let events =
        match Json_lite.member "events" d with
        | Some (Json_lite.Arr l) -> l
        | _ ->
            fail "domain %d: missing \"events\" array" di;
            []
      in
      if List.length events <> min total capacity then
        fail "domain %d: %d events, expected min(total=%d, capacity=%d)" di
          (List.length events) total capacity;
      total_events := !total_events + List.length events;
      let _ =
        List.fold_left
          (fun (i, prev) e ->
            let ns = num "ns" e in
            if ns < 0.0 then fail "domain %d event %d: negative ns" di i;
            if ns < prev then
              fail "domain %d event %d: ns %g decreases from %g" di i ns prev;
            if str "kind" e = "" then fail "domain %d event %d: empty kind" di i;
            (i + 1, ns))
          (0, neg_infinity) events
      in
      ())
    domains;
  if !total_events = 0 then fail "dump holds no events at all";
  if !errors > 0 then begin
    Printf.eprintf "check_flight: %s: %d error(s)\n" path !errors;
    exit 1
  end;
  Printf.printf "check_flight: %s: OK (%d domains, %d retained events)\n" path
    (List.length domains) !total_events
