(* CI's plan validator: vets the "dl4-plan/1" JSON that `dl4
   explain-plan` (and `query --cq` via the serve plan cache) emit.
   Usage: check_plan FILE — the file holds one plan JSON object per
   line.  Exit 0 when every plan is well-formed, 1 otherwise.

   Checks, per plan: the schema tag; query/vars shape; a non-empty step
   list; every step's kind and strategy drawn from the closed
   vocabularies; binds forming an exact partition of vars (each variable
   bound exactly once, filters binding nothing); estimates non-negative;
   executed plans carrying actuals on every step, unexecuted plans on
   none. *)

let fail = ref false

let err fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("check_plan: " ^ s);
      fail := true)
    fmt

let to_str_list j =
  Option.bind (Json_lite.to_list j) (fun l ->
      List.fold_right
        (fun x acc ->
          match (Json_lite.to_str x, acc) with
          | Some s, Some ss -> Some (s :: ss)
          | _ -> None)
        l (Some []))

let str_field name j = Option.bind (Json_lite.member name j) Json_lite.to_str

let int_field name j =
  match Option.bind (Json_lite.member name j) Json_lite.to_num with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_field name j =
  match Json_lite.member name j with
  | Some (Json_lite.Bool b) -> Some b
  | _ -> None

let check_step ~lineno ~executed i step =
  let ctx = Printf.sprintf "line %d step %d" lineno i in
  (match str_field "atom" step with
  | Some a when a <> "" -> ()
  | _ -> err "%s: missing or empty atom" ctx);
  (match str_field "kind" step with
  | Some ("concept" | "role") -> ()
  | Some k -> err "%s: unknown kind %S" ctx k
  | None -> err "%s: missing kind" ctx);
  let binds =
    match Option.bind (Json_lite.member "binds" step) to_str_list with
    | Some bs -> bs
    | None ->
        err "%s: missing binds array" ctx;
        []
  in
  (match bool_field "filter" step with
  | Some f ->
      if f <> (binds = []) then
        err "%s: filter flag disagrees with binds" ctx
  | None -> err "%s: missing filter flag" ctx);
  (match int_field "est_rows" step with
  | Some n when n >= 0 -> ()
  | _ -> err "%s: est_rows must be a non-negative integer" ctx);
  (match Option.bind (Json_lite.member "est_cost_ns" step) Json_lite.to_num with
  | Some f when f >= 0.0 -> ()
  | _ -> err "%s: est_cost_ns must be a non-negative number" ctx);
  (match Json_lite.member "strategy" step with
  | Some Json_lite.Null when not executed -> ()
  | Some Json_lite.Null -> err "%s: executed plan step lacks a strategy" ctx
  | Some (Json_lite.Str ("nested_loop" | "hash_join" | "filter")) ->
      if not executed then err "%s: unexecuted plan step has a strategy" ctx
  | Some (Json_lite.Str s) -> err "%s: unknown strategy %S" ctx s
  | _ -> err "%s: missing strategy" ctx);
  List.iter
    (fun field ->
      match Json_lite.member field step with
      | Some Json_lite.Null ->
          if executed then err "%s: executed plan step lacks %s" ctx field
      | Some (Json_lite.Num f) when Float.is_integer f && f >= 0.0 ->
          if not executed then err "%s: unexecuted plan step has %s" ctx field
      | _ -> err "%s: %s must be null or a non-negative integer" ctx field)
    [ "actual_rows"; "probes" ];
  binds

let check_plan ~lineno j =
  (match str_field "schema" j with
  | Some "dl4-plan/1" -> ()
  | Some s -> err "line %d: unknown schema %S" lineno s
  | None -> err "line %d: missing schema" lineno);
  (match str_field "query" j with
  | Some q when q <> "" -> ()
  | _ -> err "line %d: missing or empty query" lineno);
  let vars =
    match Option.bind (Json_lite.member "vars" j) to_str_list with
    | Some vs -> vs
    | None ->
        err "line %d: missing vars array" lineno;
        []
  in
  (match int_field "individuals" j with
  | Some n when n >= 0 -> ()
  | _ -> err "line %d: individuals must be a non-negative integer" lineno);
  (match int_field "threshold" j with
  | Some n when n >= 0 -> ()
  | _ -> err "line %d: threshold must be a non-negative integer" lineno);
  (match Json_lite.member "forced" j with
  | Some (Json_lite.Null | Json_lite.Str ("nested_loop" | "hash_join")) -> ()
  | _ -> err "line %d: forced must be null, nested_loop or hash_join" lineno);
  (match str_field "order" j with
  | Some ("cost" | "syntactic") -> ()
  | _ -> err "line %d: order must be cost or syntactic" lineno);
  let executed =
    match bool_field "executed" j with
    | Some b -> b
    | None ->
        err "line %d: missing executed flag" lineno;
        false
  in
  match Option.bind (Json_lite.member "steps" j) Json_lite.to_list with
  | None | Some [] -> err "line %d: steps must be a non-empty array" lineno
  | Some steps ->
      let bound =
        List.concat (List.mapi (check_step ~lineno ~executed) steps)
      in
      let sorted = List.sort String.compare bound in
      if sorted <> List.sort String.compare vars then
        err "line %d: steps bind [%s] but vars are [%s]" lineno
          (String.concat ", " sorted)
          (String.concat ", " (List.sort String.compare vars));
      if
        List.length (List.sort_uniq String.compare bound)
        <> List.length bound
      then err "line %d: a variable is bound by more than one step" lineno

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: check_plan FILE";
        exit 2
  in
  let ic = open_in path in
  let lineno = ref 0 in
  let plans = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr plans;
         match Json_lite.parse line with
         | Error msg -> err "line %d: unparsable JSON: %s" !lineno msg
         | Ok j -> check_plan ~lineno:!lineno j
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !plans = 0 then err "%s: no plans found" path;
  if !fail then exit 1;
  Printf.printf "check_plan: %s: %d plan(s) OK\n" path !plans
