(* check_prom: CI validator for the Prometheus text exposition that
   `dl4 serve --metrics-out` writes.

   Dependency-free by design (like check_trace/check_flight): a small
   hand-rolled parser for the exposition format, independent of the
   renderer in Telemetry, so it cross-checks the writer instead of
   sharing its bugs.  Checks:

   - line grammar: # HELP / # TYPE comments, or samples
     `name[{labels}] value [timestamp]`
   - metric and label names match the format's identifier grammar
   - label values use only the legal escapes (backslash, quote, n)
   - every sample's metric has a TYPE declared above it, exactly once
   - no duplicate series: (name, complete label set) appears at most
     once
   - histograms: le labels parse, cumulative bucket counts are
     monotonically non-decreasing in le order, the +Inf bucket exists
     and equals the _count sample of the same series

   Usage: check_prom FILE.  Exit 0 when valid, 1 with one message per
   defect. *)

let errors = ref 0

let fail line fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "check_prom: line %d: %s\n" line msg)
    fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_metric_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* label names may not contain ':' *)
let is_label_name s =
  s <> ""
  && s.[0] <> ':'
  && is_name_start s.[0]
  && String.for_all (fun c -> is_name_char c && c <> ':') s

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

(* Parse `{k="v",...}` starting after the '{'; returns (labels, rest)
   or None on grammar errors (reported by the caller). *)
let parse_labels lineno s =
  let n = String.length s in
  let labels = ref [] in
  let rec pairs i =
    if i >= n then (fail lineno "unterminated label set"; None)
    else if s.[i] = '}' then Some (List.rev !labels, i + 1)
    else begin
      let j = ref i in
      while !j < n && s.[!j] <> '=' && s.[!j] <> '}' do incr j done;
      if !j >= n || s.[!j] <> '=' then begin
        fail lineno "label without '='";
        None
      end
      else begin
        let key = String.sub s i (!j - i) in
        if not (is_label_name key) then
          fail lineno "invalid label name %S" key;
        let j = !j + 1 in
        if j >= n || s.[j] <> '"' then begin
          fail lineno "label value of %S is not quoted" key;
          None
        end
        else begin
          (* scan the value honoring escapes *)
          let b = Buffer.create 16 in
          let rec value k =
            if k >= n then begin
              fail lineno "unterminated label value for %S" key;
              None
            end
            else if s.[k] = '\\' then
              if k + 1 >= n then begin
                fail lineno "dangling backslash in label value for %S" key;
                None
              end
              else begin
                (match s.[k + 1] with
                | '\\' -> Buffer.add_char b '\\'
                | '"' -> Buffer.add_char b '"'
                | 'n' -> Buffer.add_char b '\n'
                | c ->
                    fail lineno
                      "illegal escape '\\%c' in label value for %S (only \
                       \\\\, \\\" and \\n are allowed)"
                      c key);
                value (k + 2)
              end
            else if s.[k] = '"' then Some (k + 1)
            else begin
              Buffer.add_char b s.[k];
              value (k + 1)
            end
          in
          match value (j + 1) with
          | None -> None
          | Some k ->
              labels := (key, Buffer.contents b) :: !labels;
              if k < n && s.[k] = ',' then pairs (k + 1)
              else if k < n && s.[k] = '}' then Some (List.rev !labels, k + 1)
              else begin
                fail lineno "expected ',' or '}' after label %S" key;
                None
              end
        end
      end
    end
  in
  pairs 0

type series = { s_line : int; s_value : float }

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: check_prom FILE";
        exit 2
  in
  let ic =
    try open_in path
    with Sys_error e ->
        Printf.eprintf "check_prom: %s\n" e;
        exit 2
  in
  let types : (string, string * int) Hashtbl.t = Hashtbl.create 16 in
  let seen : (string * (string * string) list, series) Hashtbl.t =
    Hashtbl.create 64
  in
  let sample_count = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let ln = !lineno in
       if line = "" then ()
       else if String.length line >= 1 && line.[0] = '#' then begin
         match String.split_on_char ' ' line with
         | "#" :: "TYPE" :: name :: rest ->
             if not (is_metric_name name) then
               fail ln "invalid metric name %S in TYPE comment" name;
             (match rest with
             | [ ("counter" | "gauge" | "histogram" | "summary" | "untyped") ]
               -> ()
             | _ -> fail ln "TYPE of %s is not a known metric type" name);
             (match Hashtbl.find_opt types name with
             | Some _ -> fail ln "duplicate TYPE declaration for %s" name
             | None ->
                 Hashtbl.replace types name
                   ((match rest with [ t ] -> t | _ -> "untyped"), ln))
         | "#" :: "HELP" :: name :: _ ->
             if not (is_metric_name name) then
               fail ln "invalid metric name %S in HELP comment" name
         | "#" :: ("HELP" | "TYPE") :: _ ->
             fail ln "HELP/TYPE comment without a metric name"
         | _ -> () (* free-form comment: legal *)
       end
       else begin
         (* sample line *)
         incr sample_count;
         let name_end = ref 0 in
         let n = String.length line in
         while
           !name_end < n && is_name_char line.[!name_end]
         do incr name_end done;
         let name = String.sub line 0 !name_end in
         if not (is_metric_name name) then
           fail ln "sample does not start with a metric name: %S" line
         else begin
           let labels, rest_at =
             if !name_end < n && line.[!name_end] = '{' then
               match
                 parse_labels ln
                   (String.sub line (!name_end + 1) (n - !name_end - 1))
               with
               | Some (labels, consumed) -> (labels, !name_end + 1 + consumed)
               | None -> ([], n)
             else ([], !name_end)
           in
           let rest = String.trim (String.sub line rest_at (n - rest_at)) in
           let value =
             match String.split_on_char ' ' rest with
             | v :: ([] | [ _ ]) -> parse_value v
             | _ -> None
           in
           (match value with
           | None -> fail ln "sample of %s has no parsable value: %S" name rest
           | Some _ -> ());
           (* the TYPE a sample belongs to: its own name, or the base
              name for histogram/summary series suffixes *)
           let base =
             let strip suf =
               if String.length name > String.length suf
                  && String.sub name
                       (String.length name - String.length suf)
                       (String.length suf)
                     = suf
               then
                 Some
                   (String.sub name 0 (String.length name - String.length suf))
               else None
             in
             match Hashtbl.find_opt types name with
             | Some _ -> Some name
             | None ->
                 List.find_map
                   (fun suf ->
                     match Option.bind (strip suf) (Hashtbl.find_opt types) with
                     | Some ("histogram", _) | Some ("summary", _) ->
                         strip suf
                     | _ -> None)
                   [ "_bucket"; "_sum"; "_count" ]
           in
           (match base with
           | None -> fail ln "sample %s has no TYPE declaration above it" name
           | Some b -> (
               match Hashtbl.find_opt types b with
               | Some (_, tline) when tline > ln ->
                   fail ln "sample %s appears before its TYPE (line %d)" name
                     tline
               | _ -> ()));
           let key = (name, List.sort compare labels) in
           (match Hashtbl.find_opt seen key with
           | Some prev ->
               fail ln "duplicate series %s (first at line %d)" name
                 prev.s_line
           | None ->
               Hashtbl.replace seen key
                 { s_line = ln;
                   s_value = Option.value ~default:Float.nan value })
         end
       end
     done
   with End_of_file -> ());
  close_in ic;
  (* histogram structure: group _bucket series by (base, labels-minus-le) *)
  let groups :
      (string * (string * string) list, (float * float * int) list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun (name, labels) s ->
      let strip_bucket =
        if String.length name > 7
           && String.sub name (String.length name - 7) 7 = "_bucket"
        then Some (String.sub name 0 (String.length name - 7))
        else None
      in
      match strip_bucket with
      | Some base when
          (match Hashtbl.find_opt types base with
          | Some ("histogram", _) -> true
          | _ -> false) -> (
          let le =
            match List.assoc_opt "le" labels with
            | None ->
                fail s.s_line "histogram bucket of %s lacks an le label" base;
                None
            | Some le -> (
                match parse_value le with
                | Some f -> Some f
                | None ->
                    fail s.s_line "unparsable le=%S on %s" le base;
                    None)
          in
          match le with
          | None -> ()
          | Some le ->
              let key = (base, List.remove_assoc "le" labels) in
              let cell =
                match Hashtbl.find_opt groups key with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.replace groups key c;
                    c
              in
              cell := (le, s.s_value, s.s_line) :: !cell)
      | _ -> ())
    seen;
  Hashtbl.iter
    (fun (base, labels) cell ->
      let buckets =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) !cell
      in
      let rec monotone prev = function
        | [] -> ()
        | (le, v, ln) :: rest ->
            if v < prev then
              fail ln
                "histogram %s: bucket le=%g count %g is below the previous \
                 cumulative count %g"
                base le v prev;
            monotone v rest
      in
      monotone 0.0 buckets;
      match List.rev buckets with
      | (le, last, ln) :: _ ->
          if le <> Float.infinity then
            fail ln "histogram %s lacks a +Inf bucket" base;
          (* +Inf bucket must agree with the _count sample *)
          let count_key = (base ^ "_count", List.sort compare labels) in
          (match Hashtbl.find_opt seen count_key with
          | Some c when c.s_value <> last ->
              fail ln "histogram %s: +Inf bucket %g disagrees with _count %g"
                base last c.s_value
          | Some _ -> ()
          | None -> fail ln "histogram %s has buckets but no _count sample" base)
      | [] -> ())
    groups;
  if !sample_count = 0 then begin
    incr errors;
    Printf.eprintf "check_prom: %s contains no samples\n" path
  end;
  if !errors > 0 then begin
    Printf.eprintf "check_prom: %s: %d problem(s)\n" path !errors;
    exit 1
  end
  else
    Printf.printf "check_prom: %s ok (%d samples, %d series, %d histograms)\n"
      path !sample_count (Hashtbl.length seen) (Hashtbl.length groups)
