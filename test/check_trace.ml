(* Standalone validator for Chrome trace_event files produced by Dl_obs
   (--trace FILE / DL4_TRACE).  Used by CI to vet the trace artifact the
   suite writes when run with DL4_TRACE=1.

   Checks:
   - the file is a JSON object with a "traceEvents" array;
   - every event is a complete-duration event: ph "X", string name/cat,
     numeric ts/dur/pid/tid, dur >= 0;
   - span identities: args.id positive and unique, args.parent resolves
     to an existing id (or 0 for roots), and each child's [ts, ts+dur]
     interval sits inside its parent's (small epsilon for clock grain);
   - per-tid well-formedness: on any one tid, intervals are properly
     nested or disjoint — never partially overlapping.

   Exit 0 on success (prints a one-line summary), 1 with diagnostics
   otherwise.  The parser below is a minimal recursive-descent JSON
   reader: the container ships no JSON library, and the subset Dl_obs
   emits (objects, arrays, strings, numbers) is small. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then (pos := !pos + m; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* BMP only; Dl_obs never emits astral characters *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Validation *)

type event = {
  name : string;
  tid : int;
  ts : float; (* microseconds *)
  dur : float;
  id : int; (* 0 when the event carries no span identity *)
  parent : int;
}

let errors = ref 0

let err fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      if !errors <= 25 then Printf.eprintf "error: %s\n" msg)
    fmt

let field obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let num_field ctx obj k =
  match field obj k with
  | Some (Num f) -> Some f
  | Some _ ->
      err "%s: field %S is not a number" ctx k;
      None
  | None ->
      err "%s: missing field %S" ctx k;
      None

let str_field ctx obj k =
  match field obj k with
  | Some (Str v) -> Some v
  | Some _ ->
      err "%s: field %S is not a string" ctx k;
      None
  | None ->
      err "%s: missing field %S" ctx k;
      None

let event_of_json i j =
  let ctx = Printf.sprintf "event %d" i in
  let name = Option.value ~default:"?" (str_field ctx j "name") in
  ignore (str_field ctx j "cat");
  (match str_field ctx j "ph" with
  | Some "X" | None -> ()
  | Some ph -> err "%s (%s): ph is %S, want \"X\"" ctx name ph);
  ignore (num_field ctx j "pid");
  let tid =
    match num_field ctx j "tid" with Some f -> int_of_float f | None -> 0
  in
  let ts = Option.value ~default:0.0 (num_field ctx j "ts") in
  let dur = Option.value ~default:0.0 (num_field ctx j "dur") in
  if dur < 0.0 then err "%s (%s): negative dur %f" ctx name dur;
  let arg_int k =
    match field j "args" with
    | Some args -> (
        match field args k with
        | Some (Num f) -> int_of_float f
        | Some (Str s) -> ( try int_of_string s with _ -> 0)
        | _ -> 0)
    | None -> 0
  in
  { name; tid; ts; dur; id = arg_int "id"; parent = arg_int "parent" }

let eps_us = 10.0

let check_parents events =
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.id <> 0 then begin
        if Hashtbl.mem by_id e.id then
          err "span id %d (%s) is not unique" e.id e.name;
        Hashtbl.replace by_id e.id e
      end)
    events;
  List.iter
    (fun e ->
      if e.parent <> 0 then
        match Hashtbl.find_opt by_id e.parent with
        | None -> err "span %s: parent id %d not in trace" e.name e.parent
        | Some p ->
            if e.ts < p.ts -. eps_us then
              err "span %s starts %.1fus before its parent %s" e.name
                (p.ts -. e.ts) p.name;
            if e.ts +. e.dur > p.ts +. p.dur +. eps_us then
              err "span %s ends %.1fus after its parent %s" e.name
                (e.ts +. e.dur -. (p.ts +. p.dur))
                p.name)
    events

(* On one tid, complete events must be properly nested or disjoint: sort
   by (ts, -dur) and keep a stack of enclosing intervals. *)
let check_nesting events =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace by_tid e.tid
        (e :: Option.value ~default:[] (Hashtbl.find_opt by_tid e.tid)))
    events;
  Hashtbl.iter
    (fun tid es ->
      let sorted =
        List.sort
          (fun a b ->
            match compare a.ts b.ts with
            | 0 -> compare b.dur a.dur
            | c -> c)
          es
      in
      let stack = ref [] in
      List.iter
        (fun e ->
          let rec pop () =
            match !stack with
            | top :: rest when e.ts >= top.ts +. top.dur -. eps_us ->
                stack := rest;
                pop ()
            | _ -> ()
          in
          pop ();
          (match !stack with
          | top :: _ when e.ts +. e.dur > top.ts +. top.dur +. eps_us ->
              err
                "tid %d: span %s [%.1f, %.1f] partially overlaps %s [%.1f, \
                 %.1f]"
                tid e.name e.ts (e.ts +. e.dur) top.name top.ts
                (top.ts +. top.dur)
          | _ -> ());
          stack := e :: !stack)
        sorted)
    by_tid

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: check_trace FILE.trace.json";
        exit 2
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let root =
    try parse contents
    with Parse_error msg ->
      Printf.eprintf "error: %s: invalid JSON: %s\n" path msg;
      exit 1
  in
  let events =
    match field root "traceEvents" with
    | Some (Arr evs) -> List.mapi event_of_json evs
    | Some _ ->
        err "%s: \"traceEvents\" is not an array" path;
        []
    | None ->
        err "%s: no \"traceEvents\" field" path;
        []
  in
  check_parents events;
  check_nesting events;
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.tid) events)
  in
  if !errors > 0 then begin
    Printf.eprintf "%s: %d error(s) in %d events\n" path !errors
      (List.length events);
    exit 1
  end;
  Printf.printf "%s: ok (%d events, %d tid(s))\n" path (List.length events)
    (List.length tids)
