(* The audit plane: census ≡ per-fact naive reference (differential,
   over the paper examples, shipped KBs, random in/out-of-fragment KBs,
   a parallel pool and both backends), exact-value CQ answers ≡ the
   naive sweep under every planner regime, the dl4-audit/1 report's
   well-formedness (cross-checked with the independent Json_lite
   reader), drift records, the serve daemon's [audit] op with its cache
   and drift sink, and the KB-health telemetry gauges. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let kb_dir = Filename.concat (Filename.concat ".." "examples") "kb"

let load_example name =
  Surface.parse_kb4_exn (read (Filename.concat kb_dir name))

let tmp name = Filename.temp_file "dl4_audit" name

(* ------------------------------------------------------------------ *)
(* Census differential: batched grids vs the per-fact reference *)

(* a census rendered for comparison: dims + every (fact, value) line *)
let census_lines (cs : Audit.census) =
  Printf.sprintf "individuals=%d concepts=%d role_facts=%d" cs.cs_individuals
    cs.cs_concepts cs.cs_role_facts
  :: List.map
       (fun (f, v) -> Audit.fact_to_string f ^ " = " ^ Truth.to_string v)
       cs.Audit.cs_entries

let check_census ?(config = Session.default_config) name kb =
  let para = Para.create ~config kb in
  let cs = Audit.census para in
  (* a second Para over a fresh session: the naive reference must not
     share the batched sweep's warm cache *)
  let cs_naive = Audit.census_naive (Para.create ~config kb) in
  Alcotest.(check (list string))
    (name ^ "/census = naive") (census_lines cs_naive) (census_lines cs)

let random_kb ~seed ~allow_negation =
  let kb =
    Gen.kb4
      { Gen.default with
        Gen.seed;
        n_concepts = 4;
        n_roles = 2;
        n_individuals = 5;
        n_tbox = 5;
        n_abox = 10;
        max_depth = 2;
        inconsistency_rate = (if allow_negation then 0.3 else 0.0);
        allow_negation }
  in
  if allow_negation then Gen.inject_contradictions ~seed ~count:2 kb else kb

let census_tests =
  List.map
    (fun (name, kb) ->
      Alcotest.test_case name `Quick (fun () -> check_census name kb))
    [ ("example1", Paper_examples.example1);
      ("example2", Paper_examples.example2);
      ("example3", Paper_examples.example3);
      ("example4", Paper_examples.example4) ]
  @ List.map
      (fun file ->
        Alcotest.test_case file `Quick (fun () ->
            check_census file (load_example file)))
      [ "example1.dl4"; "access_control.dl4"; "tweety.dl4"; "branchy.dl4" ]
  @ [ Alcotest.test_case "parallel pool (jobs=2)" `Quick (fun () ->
          check_census
            ~config:{ Session.default_config with Session.jobs = 2 }
            "example1/j2" Paper_examples.example1);
      Alcotest.test_case "auto backend" `Quick (fun () ->
          check_census
            ~config:
              { Session.default_config with Session.backend = Backend.Auto }
            "example1/auto" Paper_examples.example1);
      Alcotest.test_case "horn-fragment KB, horn backend" `Quick (fun () ->
          (* EL heads, literal assertions, one contradiction — inside the
             strict completion backend's fragment *)
          let kb =
            Surface.parse_kb4_exn
              "Bird < Fly.\nPenguin < Bird.\ntweety : Penguin.\n\
               tweety : ~Fly.\npolly : Bird.\nhasWing(tweety, w1).\n"
          in
          check_census
            ~config:
              { Session.default_config with Session.backend = Backend.Horn }
            "horn-fragment/horn" kb);
      Alcotest.test_case "random out-of-fragment" `Quick (fun () ->
          let kb = random_kb ~seed:42 ~allow_negation:true in
          check_census "out-of-fragment" kb;
          check_census
            ~config:{ Session.default_config with Session.jobs = 2 }
            "out-of-fragment/j2" kb) ]

(* ------------------------------------------------------------------ *)
(* Derived health numbers on the paper's Example 1: john is the one
   contradiction (Doctor ∧ ¬Doctor), so every number is hand-checkable *)

let health_tests =
  [ Alcotest.test_case "example1 health numbers" `Quick (fun () ->
        let para = Para.create Paper_examples.example1 in
        let cs = Audit.census para in
        checki "B count" 1 (Audit.count cs Truth.Both);
        checkb "decided = t+f+B" true
          (Audit.decided cs
          = Audit.count cs Truth.True + Audit.count cs Truth.False
            + Audit.count cs Truth.Both);
        checkb "ratio = B/decided" true
          (Float.abs
             (Audit.inconsistency_ratio cs
             -. (float_of_int (Audit.count cs Truth.Both)
                /. float_of_int (Audit.decided cs)))
          < 1e-9);
        (match Audit.top_individuals cs ~k:3 with
        | (who, n) :: _ ->
            checks "most contradictory individual" "john" who;
            checki "his contradictions" 1 n
        | [] -> Alcotest.fail "no top individual");
        (match Audit.top_concepts cs ~k:3 with
        | (c, _) :: _ -> checks "most contradicted concept" "Doctor" c
        | [] -> Alcotest.fail "no top concept");
        checkb "per_concept covers every swept concept" true
          (List.length (Audit.per_concept cs) = cs.Audit.cs_concepts));
    Alcotest.test_case "consistent KB has ratio 0" `Quick (fun () ->
        let para =
          Para.create
            (Surface.parse_kb4_exn "john : Doctor.\nmary : Patient.\n")
        in
        let cs = Audit.census para in
        checki "no B" 0 (Audit.count cs Truth.Both);
        checkb "ratio 0" true (Audit.inconsistency_ratio cs = 0.0);
        checkb "no top individuals" true (Audit.top_individuals cs ~k:5 = []))
  ]

(* ------------------------------------------------------------------ *)
(* dl4-audit/1 report well-formedness via the independent reader *)

let parse_json s =
  match Json_lite.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable JSON (%s): %s" e s

let jstr name j =
  Option.value ~default:"" (Option.bind (Json_lite.member name j) Json_lite.to_str)

let jnum name j =
  Option.value ~default:Float.nan
    (Option.bind (Json_lite.member name j) Json_lite.to_num)

let report_tests =
  [ Alcotest.test_case "report parses and carries the schema" `Quick
      (fun () ->
        let para = Para.create Paper_examples.example1 in
        let cs = Audit.census para in
        let j = parse_json (Audit.report_json para cs) in
        checks "schema" "dl4-audit/1" (jstr "schema" j);
        let kb = Option.get (Json_lite.member "kb" j) in
        checki "individuals" cs.Audit.cs_individuals
          (int_of_float (jnum "individuals" kb));
        let counts = Option.get (Json_lite.member "counts" j) in
        checki "B" (Audit.count cs Truth.Both)
          (int_of_float (jnum "B" counts));
        checkb "ratio" true
          (Float.abs (jnum "inconsistency_ratio" j -. Audit.inconsistency_ratio cs)
          < 1e-9);
        checkb "per_concept is a list" true
          (Option.bind (Json_lite.member "per_concept" j) Json_lite.to_list
          <> None);
        (* provenance of the top individual names the contradiction *)
        match
          Option.bind (Json_lite.member "top_individuals" j) Json_lite.to_list
        with
        | Some (top :: _) -> checks "top individual" "john" (jstr "individual" top)
        | _ -> Alcotest.fail "no top_individuals array");
    Alcotest.test_case "exactly filter lists the matching facts" `Quick
      (fun () ->
        let para = Para.create Paper_examples.example1 in
        let cs = Audit.census para in
        let j =
          parse_json (Audit.report_json ~exactly:[ Truth.Both ] para cs)
        in
        match Option.bind (Json_lite.member "facts" j) Json_lite.to_list with
        | Some [ f ] ->
            checks "the B fact" "Doctor(john)" (jstr "fact" f);
            checks "its value" "TOP" (jstr "value" f)
        | Some l -> Alcotest.failf "expected 1 fact, got %d" (List.length l)
        | None -> Alcotest.fail "no facts array") ]

(* ------------------------------------------------------------------ *)
(* Exact-value CQ answers: plan path ≡ naive sweep, every regime *)

let answers_t =
  Alcotest.(list (pair (list string) (testable Truth.pp Truth.equal)))

let regimes =
  [ ("cost/adaptive", `Cost, None, None);
    ("cost/nested", `Cost, Some Cq.Plan.Nested_loop, None);
    ("cost/hash", `Cost, Some Cq.Plan.Hash_join, None);
    ("cost/threshold0", `Cost, None, Some 0);
    ("syntactic/adaptive", `Syntactic, None, None);
    ("syntactic/nested", `Syntactic, Some Cq.Plan.Nested_loop, None);
    ("syntactic/hash", `Syntactic, Some Cq.Plan.Hash_join, None) ]

let value_sets =
  [ [ Truth.Both ];
    [ Truth.Neither ];
    [ Truth.Both; Truth.Neither ];
    [ Truth.True ];
    Truth.all ]

let queries_over kb =
  let signature = Kb4.signature kb in
  let concepts = List.sort_uniq String.compare signature.Axiom.concepts in
  let roles = List.sort_uniq String.compare signature.Axiom.roles in
  let inds = signature.Axiom.individuals in
  let c i = Concept.Atom (List.nth concepts (i mod List.length concepts)) in
  let r i = Role.name (List.nth roles (i mod List.length roles)) in
  if concepts = [] || inds = [] then []
  else
    Cq.make ~head:[ "x" ] ~body:[ Cq.Concept_atom (c 0, Cq.Var "x") ]
    :: (if roles = [] then []
        else
          [ Cq.make ~head:[ "x"; "y" ]
              ~body:
                [ Cq.Concept_atom (c 0, Cq.Var "x");
                  Cq.Role_atom (r 0, Cq.Var "x", Cq.Var "y") ] ])

let check_exactly ?(jobs = 1) name kb =
  let config = { Session.default_config with Session.jobs } in
  let para = Para.create ~config kb in
  List.iter
    (fun q ->
      List.iter
        (fun values ->
          let expected = Cq.answers_exactly_naive para ~values q in
          List.iter
            (fun (regime, order, force, threshold) ->
              let plan = Cq.compile ?threshold ?force ~order para q in
              Alcotest.check answers_t
                (name ^ "/" ^ regime ^ " exactly")
                expected
                (Cq.run_exactly plan ~values))
            regimes)
        value_sets)
    (queries_over kb)

let exactly_tests =
  List.map
    (fun (name, kb) ->
      Alcotest.test_case name `Quick (fun () -> check_exactly name kb))
    [ ("example1", Paper_examples.example1);
      ("example3", Paper_examples.example3);
      ("tweety.dl4", load_example "tweety.dl4");
      ("branchy.dl4", load_example "branchy.dl4");
      ("random out-of-fragment", random_kb ~seed:42 ~allow_negation:true) ]
  @ [ Alcotest.test_case "parallel pool (jobs=2)" `Quick (fun () ->
          check_exactly ~jobs:2 "example1/j2" Paper_examples.example1);
      Alcotest.test_case "example1: john is the exactly-B doctor" `Quick
        (fun () ->
          let para = Para.create Paper_examples.example1 in
          let q =
            Cq.make ~head:[ "x" ]
              ~body:[ Cq.Concept_atom (Concept.Atom "Doctor", Cq.Var "x") ]
          in
          Alcotest.check answers_t "exactly B"
            [ ([ "john" ], Truth.Both) ]
            (Cq.answers_exactly para ~values:[ Truth.Both ] q)) ]

(* ------------------------------------------------------------------ *)
(* Selector atoms: Exact in the body is classical, designated-composable *)

let selector_tests =
  [ Alcotest.test_case "selector atom matches naive through every regime"
      `Quick (fun () ->
        let kb = Paper_examples.example1 in
        let para = Para.create kb in
        let q =
          Cq.make ~head:[ "x" ]
            ~body:
              [ Cq.Exact
                  ([ Truth.Both ], Cq.Concept_atom (Concept.Atom "Doctor", Cq.Var "x"))
              ]
        in
        let expected = Cq.answers_naive para q in
        Alcotest.check answers_t "exactly-B doctor is john"
          [ ([ "john" ], Truth.True) ]
          expected;
        List.iter
          (fun (regime, order, force, threshold) ->
            let plan = Cq.compile ?threshold ?force ~order para q in
            Alcotest.check answers_t ("selector/" ^ regime) expected
              (Cq.run plan))
          regimes);
    Alcotest.test_case "selector composes with a role join" `Quick (fun () ->
        let para = Para.create Paper_examples.example1 in
        let q =
          Cq.make ~head:[ "x"; "y" ]
            ~body:
              [ Cq.Role_atom (Role.name "hasPatient", Cq.Var "x", Cq.Var "y");
                Cq.Exact
                  ( [ Truth.True ],
                    Cq.Concept_atom (Concept.Atom "Patient", Cq.Var "y") ) ]
        in
        let expected = Cq.answers_naive para q in
        List.iter
          (fun (regime, order, force, threshold) ->
            let plan = Cq.compile ?threshold ?force ~order para q in
            Alcotest.check answers_t ("join/" ^ regime) expected (Cq.run plan))
          regimes) ]

(* ------------------------------------------------------------------ *)
(* Parser: the =VALUE / ={V,V} suffix *)

let parse_tests =
  [ Alcotest.test_case "selector suffix parses" `Quick (fun () ->
        match Cq.parse "?x <- Doctor(?x)=B" with
        | Error e -> Alcotest.fail e
        | Ok q -> (
            match q.Cq.body with
            | [ Cq.Exact ([ Truth.Both ], Cq.Concept_atom _) ] -> ()
            | _ -> Alcotest.fail "unexpected parse"));
    Alcotest.test_case "braced multi-value set parses" `Quick (fun () ->
        match Cq.parse "?x <- Doctor(?x)={B,N}, hasPatient(?x, ?y)" with
        | Error e -> Alcotest.fail e
        | Ok q -> (
            match q.Cq.body with
            | [ Cq.Exact (vs, _); Cq.Role_atom _ ] ->
                checkb "B and N" true
                  (List.mem Truth.Both vs && List.mem Truth.Neither vs)
            | _ -> Alcotest.fail "unexpected parse"));
    Alcotest.test_case "selector round-trips through to_string" `Quick
      (fun () ->
        List.iter
          (fun src ->
            match Cq.parse src with
            | Error e -> Alcotest.fail e
            | Ok q -> (
                match Cq.parse (Cq.to_string q) with
                | Error e -> Alcotest.fail e
                | Ok q' ->
                    checks "round-trip" (Cq.to_string q) (Cq.to_string q')))
          [ "?x <- Doctor(?x)=B";
            "?x <- Doctor(?x)={t,f}, hasPatient(?x, ?y)";
            "?y <- hasPatient(?x, ?y)={N}" ]);
    Alcotest.test_case "bad selector suffixes are rejected" `Quick (fun () ->
        List.iter
          (fun src ->
            match Cq.parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail ("expected error for " ^ src))
          [ "?x <- Doctor(?x)={X}";
            "?x <- Doctor(?x)=";
            "?x <- Doctor(?x)={}" ]) ]

(* ------------------------------------------------------------------ *)
(* Drift: diff and the JSONL record *)

let drift_tests =
  [ Alcotest.test_case "a poisoning delta is one t->TOP transition" `Quick
      (fun () ->
        let kb =
          Surface.parse_kb4_exn
            "john : Doctor.\nmary : Patient.\nhasPatient(john, mary).\n"
        in
        let s = Session.create kb in
        let para = Para.of_session s in
        let before = Audit.census para in
        (match Delta.parse_script "+ john : ~Doctor.\n" with
        | Ok [ d ] -> ignore (Session.apply s d : Oracle.apply_stats)
        | _ -> Alcotest.fail "delta parse");
        let after = Audit.census para in
        (match Audit.diff before after with
        | [ tr ] ->
            checks "fact" "Doctor(john)" (Audit.fact_to_string tr.Audit.tr_fact);
            checkb "from t" true (tr.Audit.tr_from = Some Truth.True);
            checkb "to TOP" true (tr.Audit.tr_to = Some Truth.Both)
        | trs -> Alcotest.failf "expected 1 transition, got %d" (List.length trs));
        (* the JSONL record *)
        (match
           Audit.drift_line ~trace:"abc123" ~ts_unix:1000.0 ~before ~after ()
         with
        | None -> Alcotest.fail "expected a drift line"
        | Some line ->
            let j = parse_json line in
            checks "trace" "abc123" (jstr "trace" j);
            (match
               Option.bind (Json_lite.member "changed" j) Json_lite.to_list
             with
            | Some [ c ] ->
                checks "fact" "Doctor(john)" (jstr "fact" c);
                checks "from" "t" (jstr "from" c);
                checks "to" "TOP" (jstr "to" c)
            | _ -> Alcotest.fail "expected one changed entry"));
        (* no change, no line *)
        checkb "no-op diff is empty" true (Audit.diff after after = []);
        checkb "no-op drift line is None" true
          (Audit.drift_line ~ts_unix:1000.0 ~before:after ~after () = None)) ]

(* ------------------------------------------------------------------ *)
(* Serve: the audit op, its cache, the drift sink, the KB gauges *)

let parse_resp line =
  match Json_lite.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e line

let ok j =
  match Json_lite.member "ok" j with
  | Some (Json_lite.Bool b) -> b
  | _ -> false

let jbool name j =
  match Json_lite.member name j with
  | Some (Json_lite.Bool b) -> b
  | _ -> Alcotest.failf "no boolean field %S" name

let read_lines path =
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read path)
    |> List.filter (fun l -> String.trim l <> "")

let serve_tests =
  [ Alcotest.test_case "audit op serves the report, cached across requests"
      `Quick (fun () ->
        let t = Serve.create (Session.create Paper_examples.example1) in
        let r1 = parse_resp (Serve.handle t {|{"op":"audit"}|}) in
        checkb "ok" true (ok r1);
        checkb "first census is cold" false (jbool "cached" r1);
        let audit = Option.get (Json_lite.member "audit" r1) in
        checks "schema" "dl4-audit/1" (jstr "schema" audit);
        checki "B count" 1
          (int_of_float
             (jnum "B" (Option.get (Json_lite.member "counts" audit))));
        let r2 = parse_resp (Serve.handle t {|{"op":"audit"}|}) in
        checkb "second census is warm" true (jbool "cached" r2);
        (* an update invalidates the census *)
        let u =
          parse_resp
            (Serve.handle t {|{"op":"update","script":"+ bob : Doctor.\n"}|})
        in
        checkb "update ok" true (ok u);
        let r3 = parse_resp (Serve.handle t {|{"op":"audit"}|}) in
        checkb "census recomputed after update" false (jbool "cached" r3));
    Alcotest.test_case "audit op validates its fields" `Quick (fun () ->
        let t = Serve.create (Session.create Paper_examples.example1) in
        checkb "bad exactly rejected" false
          (ok (parse_resp (Serve.handle t {|{"op":"audit","exactly":"X"}|})));
        checkb "bad top rejected" false
          (ok (parse_resp (Serve.handle t {|{"op":"audit","top":-1}|})));
        let r =
          parse_resp (Serve.handle t {|{"op":"audit","top":1,"exactly":"B"}|})
        in
        checkb "ok" true (ok r);
        let audit = Option.get (Json_lite.member "audit" r) in
        match Option.bind (Json_lite.member "facts" audit) Json_lite.to_list with
        | Some [ f ] -> checks "the B fact" "Doctor(john)" (jstr "fact" f)
        | _ -> Alcotest.fail "expected exactly one B fact");
    Alcotest.test_case "drift sink records a poisoning update" `Quick
      (fun () ->
        let drift = tmp ".drift.jsonl" in
        Sys.remove drift;
        let kb = Surface.parse_kb4_exn "john : Doctor.\n" in
        let t = Serve.create ~drift_log:drift (Session.create kb) in
        let r1 =
          parse_resp
            (Serve.handle t {|{"op":"update","script":"+ john : ~Doctor.\n"}|})
        in
        checkb "update ok" true (ok r1);
        (match read_lines drift with
        | [ line ] ->
            let j = parse_json line in
            checkb "record carries the request trace" true (jstr "trace" j <> "");
            (match
               Option.bind (Json_lite.member "changed" j) Json_lite.to_list
             with
            | Some (_ :: _ as changed) ->
                checkb "Doctor(john) moved to TOP" true
                  (List.exists
                     (fun c ->
                       jstr "fact" c = "Doctor(john)" && jstr "to" c = "TOP")
                     changed)
            | _ -> Alcotest.fail "drift record lists no changes")
        | lines -> Alcotest.failf "expected 1 drift line, got %d" (List.length lines));
        Sys.remove drift);
    Alcotest.test_case "metrics op carries the KB-health object" `Quick
      (fun () ->
        let t = Serve.create (Session.create Paper_examples.example1) in
        ignore (Serve.handle t {|{"op":"audit"}|} : string);
        let r = parse_resp (Serve.handle t {|{"op":"metrics"}|}) in
        checkb "ok" true (ok r);
        let m = Option.get (Json_lite.member "metrics" r) in
        let kb = Option.get (Json_lite.member "kb" m) in
        checkb "individuals gauge" true (jnum "individuals" kb > 0.0);
        let truth = Option.get (Json_lite.member "truth" kb) in
        checki "census B count flows into the gauge" 1
          (int_of_float (jnum "B" truth));
        checkb "ratio present" true
          (not (Float.is_nan (jnum "inconsistency_ratio" kb)))) ]

(* ------------------------------------------------------------------ *)
(* Telemetry gauges: the Prometheus families *)

let telemetry_tests =
  [ Alcotest.test_case "kb gauges render only once set" `Quick (fun () ->
        let tel = Telemetry.create () in
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        let prom0 = Telemetry.prometheus tel in
        checkb "no kb gauges before a snapshot" false
          (contains prom0 "dl4_kb_individuals");
        Telemetry.set_kb_health tel
          { Telemetry.kb_individuals = 3;
            kb_tbox_axioms = 1;
            kb_abox_axioms = 4;
            kb_cached_verdicts = 10;
            kb_truth_counts = [ ("t", 3); ("f", 0); ("B", 1); ("N", 3) ];
            kb_inconsistency_ratio = 0.25 };
        let prom = Telemetry.prometheus tel in
        checkb "individuals gauge" true
          (contains prom "dl4_kb_individuals 3");
        checkb "axioms by box" true
          (contains prom "dl4_kb_axioms{box=\"tbox\"} 1"
          && contains prom "dl4_kb_axioms{box=\"abox\"} 4");
        checkb "truth family" true
          (contains prom "dl4_kb_truth_total{value=\"B\"} 1");
        checkb "ratio gauge" true
          (contains prom "dl4_kb_inconsistency_ratio 0.25");
        checkb "json kb object" true
          (contains (Telemetry.json tel) "\"kb\":")) ]

(* ------------------------------------------------------------------ *)
(* Property: the four values partition every decided-or-not fact *)

let prop_partition =
  QCheck.Test.make ~count:20
    ~name:"census values partition the fact space"
    QCheck.(make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let kb = random_kb ~seed ~allow_negation:(seed mod 2 = 0) in
      let para = Para.create kb in
      let cs = Audit.census para in
      (* every fact gets exactly one value: the per-value counts sum to
         the sweep size, and each singleton exactly-filter picks out
         exactly the facts carrying that value *)
      List.length cs.Audit.cs_entries
      = List.fold_left (fun acc v -> acc + Audit.count cs v) 0 Truth.all
      && Audit.decided cs
         = Audit.count cs Truth.True + Audit.count cs Truth.False
           + Audit.count cs Truth.Both
      && List.for_all
           (fun (f, v) ->
             List.for_all
               (fun u ->
                 (* membership in a singleton filter iff it is the value *)
                 let selected =
                   List.exists (fun (g, _) -> g = f)
                     (List.filter (fun (_, w) -> Truth.equal w u)
                        cs.Audit.cs_entries)
                 in
                 if Truth.equal u v then selected else true)
               Truth.all)
           cs.Audit.cs_entries)

let prop_exact_partition =
  QCheck.Test.make ~count:20
    ~name:"singleton exact-value answers partition the bindings"
    QCheck.(make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let kb = random_kb ~seed ~allow_negation:(seed mod 2 = 0) in
      let para = Para.create kb in
      List.for_all
        (fun q ->
          let whole = Cq.answers_exactly_naive para ~values:Truth.all q in
          let pieces =
            List.concat_map
              (fun v -> Cq.answers_exactly_naive para ~values:[ v ] q)
              Truth.all
          in
          (* same multiset: every tuple appears in exactly one singleton *)
          List.sort compare whole = List.sort compare pieces)
        (queries_over kb))

let () =
  Alcotest.run "audit"
    [ ("census-differential", census_tests);
      ("health", health_tests);
      ("report-json", report_tests);
      ("exact-cq-differential", exactly_tests);
      ("selector-atoms", selector_tests);
      ("parse", parse_tests);
      ("drift", drift_tests);
      ("serve", serve_tests);
      ("telemetry", telemetry_tests);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_partition;
         QCheck_alcotest.to_alcotest prop_exact_partition ]) ]
