(* PR 7 backend-layer tests.

   - The grep guard that keeps every module outside lib/engine from
     talking to a reasoning backend directly: routing is the oracle's
     job, so lib/core, lib/serve and lib/store must never mention
     [Backend_tableau], [Horn_backend], [Completion] or [Backend.eval].
   - Fragment detector unit tests: the syntactic Horn/EL check accepts
     exactly the advertised shapes and reports the first offender.
   - Differential tests: the tableau backend, the Horn/EL completion
     backend and the auto router return verdict-identical answers on the
     paper examples, the shipped KB files and random small KBs.
   - Routing: on a Horn-fragment classification workload, --backend auto
     sends at least 90% of the computed verdicts to the completion
     backend (the ISSUE acceptance bar). *)

(* the workload generators: [open QCheck2] below shadows their [Gen] *)
module Workload_gen = Gen

open QCheck2

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Guard: backends are an Engine implementation detail.  The sources are
   attached as test dependencies (see test/dune). *)

let guard_tests =
  [ Alcotest.test_case "only lib/engine talks to backends" `Quick (fun () ->
        let dirs = [ "core"; "serve"; "store" ] in
        let banned =
          [ "Backend_tableau."; "Horn_backend."; "Completion."; "Backend.eval" ]
        in
        let offenders = ref [] in
        List.iter
          (fun d ->
            let dir = Filename.concat ".." (Filename.concat "lib" d) in
            let files =
              Sys.readdir dir |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".ml")
              |> List.sort String.compare
            in
            Alcotest.(check bool) (d ^ " sources are visible") true (files <> []);
            List.iter
              (fun f ->
                let src = read (Filename.concat dir f) in
                let n = String.length src in
                List.iter
                  (fun pat ->
                    let m = String.length pat in
                    for i = 0 to n - m do
                      if String.sub src i m = pat then
                        offenders := (d ^ "/" ^ f, pat) :: !offenders
                    done)
                  banned)
              files)
          dirs;
        Alcotest.(check (list (pair string string)))
          "direct backend calls outside lib/engine" []
          (List.rev !offenders)) ]

(* ------------------------------------------------------------------ *)
(* Fragment detector. *)

let parse = Surface.parse_kb4_exn
let eligible4 kb = Result.is_ok (Fragment.check_kb4 kb)

let reason4 kb =
  match Fragment.check_kb4 kb with
  | Ok () -> Alcotest.fail "expected an offender"
  | Error (_, reason) -> reason

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fragment_tests =
  [ Alcotest.test_case "Horn/EL shapes are eligible" `Quick (fun () ->
        List.iter
          (fun src ->
            Alcotest.(check bool) src true (eligible4 (parse src)))
          [ "A < B. a : A.";
            "A & B < C.";
            "some r.A < B.";
            "A < some r.B.";
            "A | B < C.";             (* disjunctive body is Horn *)
            "a : ~A. a : A.";         (* contradictions stay in-fragment *)
            "r(a, b). a = b. a != c." ]);
    Alcotest.test_case "non-Horn shapes are rejected with a reason" `Quick
      (fun () ->
        List.iter
          (fun (src, frag) ->
            let kb = parse src in
            Alcotest.(check bool) (src ^ " ineligible") false (eligible4 kb);
            let r = reason4 kb in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %S mentions %S" src r frag)
              true (contains ~sub:frag r))
          [ ("A < B | C.", "disjunction");
            ("A < only r.B.", "universal");
            ("only r.A < B.", "universal");
            ("A |-> B.", "negation");   (* material ⇒ ¬ on the left in K̄ *)
            ("a : >= 2 r.", "number restriction");
            ("a : A | ~A.", "disjunction") ]);
    Alcotest.test_case "first offending axiom is reported" `Quick (fun () ->
        let kb = parse "A < B. C < D | E. a : >= 2 r." in
        match Fragment.check_kb4 kb with
        | Ok () -> Alcotest.fail "expected an offender"
        | Error (`Tbox ax, _) ->
            Alcotest.(check string)
              "TBox offender comes first" "C < D | E."
              (Format.asprintf "%a" Kb4.pp_tbox_axiom ax)
        | Error (`Abox _, _) ->
            Alcotest.fail "TBox offender should be found before the ABox");
    Alcotest.test_case "classification taxonomies are in-fragment" `Quick
      (fun () ->
        Alcotest.(check bool) "taxonomy eligible" true
          (Fragment.eligible (Workload_gen.taxonomy ~depth:3 ~branching:2))) ]

(* ------------------------------------------------------------------ *)
(* Fixtures and the query vocabulary. *)

let kb_dir = Filename.concat (Filename.concat ".." "examples") "kb"
let parse_file f = Surface.parse_kb4_exn (read (Filename.concat kb_dir f))

let clinic_kb =
  parse
    {|
    Surgeon < Doctor.
    hasPatient(bill, mary).
    mary : Patient.
    bill : Surgeon.
    dana : Doctor.
    dana : ~Surgeon.
    eve : Doctor.
    eve : ~Doctor.
    |}

let fixtures () =
  [ ("example1", Paper_examples.example1);
    ("example2", Paper_examples.example2);
    ("example3", Paper_examples.example3);
    ("example4", Paper_examples.example4);
    ("tweety", parse_file "tweety.dl4");
    ("access_control", parse_file "access_control.dl4");
    ("clinic", clinic_kb) ]

(* Every routed verdict kind over the KB's own signature: consistency,
   concept satisfiability, the instance grid, and role entailment both
   ways round. *)
let queries_for kb =
  let s = Kb4.signature kb in
  let sats =
    List.concat_map
      (fun c ->
        [ Oracle.Concept_sat (Concept.Atom c);
          Oracle.Concept_sat (Concept.Not (Concept.Atom c)) ])
      s.Axiom.concepts
  in
  let grid =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun c ->
            [ Oracle.Instance (a, Concept.Atom c);
              Oracle.Not_instance (a, Concept.Atom c) ])
          s.Axiom.concepts)
      s.Axiom.individuals
  in
  let roles =
    match (s.Axiom.roles, s.Axiom.individuals) with
    | r :: _, (a :: _ as inds) ->
        let b = List.nth_opt inds 1 |> Option.value ~default:a in
        [ Oracle.Role_pos (a, Role.name r, b);
          Oracle.Role_pos (b, Role.name r, a);
          Oracle.Role_neg (a, Role.name r, b) ]
    | _ -> []
  in
  (Oracle.Consistent :: sats) @ grid @ roles

let verdicts backend kb qs =
  Oracle.check_all (Oracle.of_config { Oracle.default_config with Oracle.jobs = 1; backend = backend } kb) qs

(* ------------------------------------------------------------------ *)
(* Differential: tableau vs auto everywhere, strict horn in-fragment. *)

let differential_tests =
  List.map
    (fun (name, kb) ->
      Alcotest.test_case (name ^ ": backends agree on every verdict") `Quick
        (fun () ->
          let qs = queries_for kb in
          let tab = verdicts Backend.Tableau kb qs in
          Alcotest.(check (list bool))
            "auto = tableau" tab
            (verdicts Backend.Auto kb qs);
          if eligible4 kb then
            Alcotest.(check (list bool))
              "horn = tableau" tab
              (verdicts Backend.Horn kb qs)))
    (fixtures ())

(* ------------------------------------------------------------------ *)
(* Routing: the ISSUE acceptance bar.  A pure-taxonomy classification is
   squarely in the Horn fragment, so auto must send ≥ 90% of the computed
   verdicts to the completion backend. *)

let routing_tests =
  [ Alcotest.test_case "auto routes >= 90% of a Horn classification to horn"
      `Quick (fun () ->
        let kb =
          Kb4.of_classical ~inclusion:Kb4.Internal
            (Workload_gen.taxonomy ~depth:3 ~branching:3)
        in
        let s =
          Session.create
            ~config:{ Session.default_config with backend = Backend.Auto }
            kb
        in
        let e = Session.engine s in
        ignore (Engine.classify e);
        let st = Engine.stats e in
        let count b =
          List.assoc_opt b st.Engine.routes |> Option.value ~default:0
        in
        let horn = count "horn" and tableau = count "tableau" in
        let total = horn + tableau in
        Alcotest.(check bool) "verdicts were computed" true (total > 0);
        Alcotest.(check bool)
          (Printf.sprintf "horn fraction %d/%d >= 0.9" horn total)
          true
          (float_of_int horn >= 0.9 *. float_of_int total));
    Alcotest.test_case "tableau pin computes every verdict on the tableau"
      `Quick (fun () ->
        let kb = clinic_kb in
        let o = Oracle.of_config { Oracle.default_config with Oracle.jobs = 1; backend = Backend.Tableau } kb in
        ignore (Oracle.check_all o (queries_for kb));
        let st = Oracle.stats o in
        Alcotest.(check (list string))
          "routes" [ "tableau" ]
          (List.map fst st.Oracle.routes));
    Alcotest.test_case "strict horn refuses an out-of-fragment KB" `Quick
      (fun () ->
        let kb = parse "A < B | C. a : A." in
        match Oracle.of_config { Oracle.default_config with Oracle.backend = Backend.Horn } kb with
        | exception Backend.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Backend.Unsupported") ]

(* ------------------------------------------------------------------ *)
(* Random KBs.  [gen_kb4] roams the full concept language (auto must
   agree with the tableau even when it cannot route); [gen_horn_kb4]
   stays inside the fragment so the strict horn backend is exercised on
   contradictions, gaps, role chains and equalities. *)

let gen_atom = Gen.map (fun a -> Concept.Atom a) (Gen.oneofl [ "A"; "B"; "C" ])
let gen_lit = Gen.oneof [ gen_atom; Gen.map (fun c -> Concept.Not c) gen_atom ]

let gen_concept =
  Gen.oneof
    [ gen_lit;
      Gen.map2 (fun a b -> Concept.And (a, b)) gen_lit gen_lit;
      Gen.map2 (fun a b -> Concept.Or (a, b)) gen_lit gen_lit;
      Gen.map (fun c -> Concept.Exists (Role.name "r", c)) gen_lit ]

let gen_ind = Gen.oneofl [ "a"; "b"; "c" ]

let gen_abox_axiom =
  Gen.oneof
    [ Gen.map2 (fun a c -> Axiom.Instance_of (a, c)) gen_ind gen_concept;
      Gen.map2
        (fun a b -> Axiom.Role_assertion (a, Role.name "r", b))
        gen_ind gen_ind ]

let gen_kb4 =
  let open Gen in
  let* n_tbox = int_bound 2 in
  let* tbox =
    list_repeat n_tbox
      (map2
         (fun c d -> Kb4.Concept_inclusion (Kb4.Internal, c, d))
         gen_concept gen_concept)
  in
  let* n_abox = int_range 1 5 in
  let* abox = list_repeat n_abox gen_abox_axiom in
  return (Kb4.make ~tbox ~abox)

(* Horn fragment: EL heads, Horn bodies, literal assertions. *)
let gen_el =
  Gen.oneof
    [ gen_atom;
      Gen.map2 (fun a b -> Concept.And (a, b)) gen_atom gen_atom;
      Gen.map (fun c -> Concept.Exists (Role.name "r", c)) gen_atom ]

let gen_body =
  Gen.oneof
    [ gen_el; Gen.map2 (fun a b -> Concept.Or (a, b)) gen_el gen_el ]

let gen_horn_abox =
  Gen.oneof
    [ Gen.map2 (fun a c -> Axiom.Instance_of (a, c)) gen_ind gen_lit;
      Gen.map2
        (fun a b -> Axiom.Role_assertion (a, Role.name "r", b))
        gen_ind gen_ind ]

let gen_horn_kb4 =
  let open Gen in
  let* n_tbox = int_bound 3 in
  let* tbox =
    list_repeat n_tbox
      (map2
         (fun c d -> Kb4.Concept_inclusion (Kb4.Internal, c, d))
         gen_body gen_el)
  in
  let* n_abox = int_range 1 5 in
  let* abox = list_repeat n_abox gen_horn_abox in
  return (Kb4.make ~tbox ~abox)

let print_kb = Surface.kb4_to_string

let random_tests =
  [ Test.make ~count:60 ~name:"random KBs: auto = tableau" ~print:print_kb
      gen_kb4
      (fun kb ->
        let qs = queries_for kb in
        verdicts Backend.Auto kb qs = verdicts Backend.Tableau kb qs);
    Test.make ~count:60 ~name:"random Horn KBs: horn = tableau"
      ~print:print_kb gen_horn_kb4
      (fun kb ->
        let qs = queries_for kb in
        eligible4 kb
        && verdicts Backend.Horn kb qs = verdicts Backend.Tableau kb qs) ]

let () =
  Alcotest.run "backend"
    [ ("guard", guard_tests);
      ("fragment", fragment_tests);
      ("differential", differential_tests);
      ("routing", routing_tests);
      ("random", List.map QCheck_alcotest.to_alcotest random_tests) ]
