(* PR 4: incremental KB deltas with provenance-keyed invalidation.

   - Surface syntax: parse / pp round trips, script splitting, the
     TBox-retraction rejection.
   - Differential invariant: for paper Examples 1-4 and two generated
     KBs, a deterministic pseudo-random delta sequence is replayed twice
     — incrementally through one live Session, and by rebuilding a fresh
     stack over the delta-applied KB at every step.  Satisfiability, the
     full (individual x atom) Belnap grid, retrieval and classification
     must agree at every step, and the classical KB maintained by the
     incremental reasoner prep must equal the from-scratch transform.
   - Retention: on a KB of two disconnected components, a delta touching
     one component keeps the other component's warm verdicts — re-asking
     them pays zero new tableau calls, proven on the oracle's call
     counter; their provenance demonstrably excludes the delta's
     individuals.
   - Index sharing: Engine.of_oracle / Para.of_engine / Session wrappers
     share one cache — a verdict paid through one wrapper is a hit
     through the others.
   - Session config: the unified record and the deprecated optional-arg
     constructors build equivalent stacks. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Surface syntax *)

let ok_parse text =
  match Delta.parse text with
  | Ok d -> d
  | Error e -> Alcotest.failf "delta parse failed: %s" e

let parse_tests =
  [ Alcotest.test_case "parse and print round trip" `Quick (fun () ->
        let d =
          ok_parse
            "# comment\n\
             + tweety : Fly.\n\
             + Penguin < Bird.\n\
             - hasWing(tweety, w).\n"
        in
        checki "adds" 1 (List.length d.Delta.add_abox);
        checki "tbox adds" 1 (List.length d.Delta.add_tbox);
        checki "retracts" 1 (List.length d.Delta.retract_abox);
        let d2 = ok_parse (Delta.to_string d) in
        checkb "round trip" true (d = d2));
    Alcotest.test_case "script splits on ---" `Quick (fun () ->
        match
          Delta.parse_script
            "+ a : C.\n---\n# only a comment here\n---\n- a : C.\n"
        with
        | Error e -> Alcotest.failf "script: %s" e
        | Ok ds ->
            (* the all-comment middle chunk is skipped *)
            checki "two non-empty deltas" 2 (List.length ds));
    Alcotest.test_case "TBox retraction is rejected" `Quick (fun () ->
        match Delta.parse "- Penguin < Bird.\n" with
        | Ok _ -> Alcotest.fail "TBox retraction must not parse"
        | Error e ->
            checkb "message mentions monotone" true
              (String.length e > 0));
    Alcotest.test_case "script errors report file line numbers" `Quick
      (fun () ->
        (* the bogus statement sits on line 4 of the file but line 2 of
           its chunk — the error must count from the file start *)
        match Delta.parse_script "+ a : C.\n---\n# ok\nbogus line\n" with
        | Ok _ -> Alcotest.fail "bogus statement must not parse"
        | Error e ->
            let contains sub =
              let n = String.length e and m = String.length sub in
              let rec go i = i + m <= n && (String.sub e i m = sub || go (i + 1)) in
              go 0
            in
            checkb "names the second delta" true (contains "delta 2");
            checkb "line counted from the file start" true (contains "line 4"));
    Alcotest.test_case "individuals and atoms of a delta" `Quick (fun () ->
        let d = ok_parse "+ a : C & some r.{b}.\n- s(a, c).\n" in
        check
          Alcotest.(list string)
          "individuals" [ "a"; "b"; "c" ] (Delta.individuals d);
        check Alcotest.(list string) "atoms" [ "C" ] (Delta.atoms d)) ]

(* ------------------------------------------------------------------ *)
(* Differential: incremental = rebuild *)

let sorted = List.sort_uniq String.compare

let grid_of t kb =
  let s = Kb4.signature kb in
  let pairs =
    List.concat_map
      (fun a -> List.map (fun c -> (a, Concept.Atom c)) (sorted s.Axiom.concepts))
      (sorted s.Axiom.individuals)
  in
  Para.instance_truths t pairs

let snapshot t kb =
  ( Para.satisfiable t,
    grid_of t kb,
    (match sorted (Kb4.signature kb).Axiom.concepts with
    | c :: _ -> Para.retrieve t (Concept.Atom c)
    | [] -> []),
    Para.classify t )

(* A deterministic delta sequence over the KB's signature: new-component
   additions, in-place additions, retractions of told assertions, and an
   absorbable TBox addition; one GCI-shaped addition exercises the full
   flush.  Every choice comes from a seeded PRNG so failures reproduce. *)
let gen_deltas rng kb steps =
  let s = Kb4.signature kb in
  let atoms = match sorted s.Axiom.concepts with [] -> [ "C" ] | l -> l in
  let roles = match sorted s.Axiom.roles with [] -> [ "r" ] | l -> l in
  let inds =
    match sorted s.Axiom.individuals with [] -> [ "a" ] | l -> l
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let fresh_count = ref 0 in
  let fresh () =
    incr fresh_count;
    Format.asprintf "z%d" !fresh_count
  in
  let current = ref kb in
  List.init steps (fun _ ->
      let d =
        match Random.State.int rng 6 with
        | 0 ->
            (* fresh component *)
            let z = fresh () in
            { Delta.empty with
              Delta.add_abox =
                [ Axiom.Instance_of (z, Concept.Atom (pick atoms)) ] }
        | 1 ->
            (* attach to an existing individual *)
            { Delta.empty with
              Delta.add_abox =
                [ Axiom.Role_assertion
                    (pick inds, Role.name (pick roles), fresh ()) ] }
        | 2 ->
            (* in-place concept assertion *)
            { Delta.empty with
              Delta.add_abox =
                [ Axiom.Instance_of (pick inds, Concept.Atom (pick atoms)) ] }
        | 3 -> (
            (* retract a told assertion, if any *)
            match (!current).Kb4.abox with
            | [] -> Delta.empty
            | abox ->
                { Delta.empty with
                  Delta.retract_abox =
                    [ List.nth abox (Random.State.int rng (List.length abox)) ]
                })
        | 4 ->
            (* absorbable TBox addition *)
            { Delta.empty with
              Delta.add_tbox =
                [ Kb4.Concept_inclusion
                    ( Kb4.Internal,
                      Concept.Atom (pick atoms),
                      Concept.Atom (pick atoms) ) ] }
        | _ ->
            (* GCI-shaped addition: exercises the full-flush path *)
            { Delta.empty with
              Delta.add_tbox =
                [ Kb4.Concept_inclusion
                    ( Kb4.Internal,
                      Concept.Or
                        (Concept.Atom (pick atoms), Concept.Atom (pick atoms)),
                      Concept.Atom (pick atoms) ) ] }
      in
      current := Delta.apply_kb4 !current d;
      d)

let pp_axioms kb =
  List.sort compare
    (List.map (Format.asprintf "%a" Axiom.pp_tbox_axiom) kb.Axiom.tbox)
  @ List.sort compare
      (List.map (Format.asprintf "%a" Axiom.pp_abox_axiom) kb.Axiom.abox)

let differential_case ?(config = Session.default_config) label kb seed =
  Alcotest.test_case
    (Format.asprintf "%s: incremental = rebuild (seed %d)" label seed)
    `Quick
    (fun () ->
      let rng = Random.State.make [| seed |] in
      let deltas = gen_deltas rng kb 4 in
      let session = Session.create ~config kb in
      let live = Para.of_session session in
      ignore (snapshot live kb);
      let acc = ref kb in
      List.iteri
        (fun i d ->
          ignore (Session.apply session d : Oracle.apply_stats);
          acc := Delta.apply_kb4 !acc d;
          checkb
            (Format.asprintf "%s step %d: session KB tracks the delta" label i)
            true
            (Session.kb session = !acc);
          (* the classical KB maintained incrementally by the reasoner
             prep must match the from-scratch transform *)
          check
            Alcotest.(list string)
            (Format.asprintf "%s step %d: incremental transform = rebuild"
               label i)
            (pp_axioms (Transform.kb !acc))
            (pp_axioms (Oracle.classical_kb (Session.oracle session)));
          let fresh = Para.create !acc in
          let inc = snapshot live !acc and ref_ = snapshot fresh !acc in
          checkb
            (Format.asprintf "%s step %d: answers identical" label i)
            true (inc = ref_))
        deltas)

let gen_kb seed =
  Gen.kb4
    { Gen.default with
      seed;
      n_concepts = 6;
      n_individuals = 6;
      n_tbox = 8;
      n_abox = 12;
      max_depth = 1;
      inconsistency_rate = 0.15 }

let differential_tests =
  [ differential_case "example1" Paper_examples.example1 1;
    differential_case "example2" Paper_examples.example2 2;
    differential_case "example3" Paper_examples.example3 3;
    differential_case "example4" Paper_examples.example4 4;
    differential_case "gen41" (gen_kb 41) 5;
    differential_case "gen43" (gen_kb 43) 6;
    (* a tiny cache interleaves LRU capacity evictions with deltas, so
       the provenance/index lifetime must track cache residency for the
       invariant to hold *)
    differential_case
      ~config:{ Session.default_config with cache_capacity = 2 }
      "example1, capacity 2" Paper_examples.example1 7;
    differential_case
      ~config:{ Session.default_config with cache_capacity = 2 }
      "gen41, capacity 2" (gen_kb 41) 8 ]

(* ------------------------------------------------------------------ *)
(* Retention: verdicts of an untouched component survive for free *)

let retention_tests =
  [ Alcotest.test_case "untouched component re-asks pay zero tableau calls"
      `Quick (fun () ->
        (* two singleton components {a} and {b}; the TBox only relates
           C and D, so b's verdicts never depend on a *)
        let kb =
          Kb4.make
            ~tbox:
              [ Kb4.Concept_inclusion
                  (Kb4.Internal, Concept.Atom "C", Concept.Atom "D") ]
            ~abox:
              [ Axiom.Instance_of ("a", Concept.Atom "A");
                Axiom.Instance_of ("b", Concept.Atom "B") ]
        in
        let s = Session.create kb in
        let p = Para.of_session s in
        let calls () =
          (Oracle.stats (Session.oracle s)).Oracle.tableau_calls
        in
        (* warm b's verdicts and global consistency *)
        checkb "satisfiable" true (Para.satisfiable p);
        let vb = Para.instance_truth p "b" (Concept.Atom "B") in
        let vbd = Para.instance_truth p "b" (Concept.Atom "D") in
        checkb "warm-up paid tableau calls" true (calls () > 0);
        (* b's provenance demonstrably excludes a *)
        (match
           Oracle.provenance (Session.oracle s)
             (Oracle.Instance ("b", Concept.Atom "B"))
         with
        | None -> Alcotest.fail "provenance of the warm verdict is missing"
        | Some e ->
            checkb "provenance mentions b" true
              (List.mem "b" e.Oracle.individuals);
            checkb "provenance excludes a" false
              (List.mem "a" e.Oracle.individuals));
        let before = calls () in
        let st =
          Session.apply s
            { Delta.empty with
              Delta.add_abox = [ Axiom.Instance_of ("a", Concept.Atom "C") ] }
        in
        checkb "delta did not flush" false st.Oracle.flushed;
        checkb "no consistency transition" false st.Oracle.consistency_flipped;
        (* apply itself pays only the post-delta consistency probe (the
           pre-delta status was already cached by the warm-up) *)
        checki "apply pays exactly one tableau call" 1
          st.Oracle.recheck_calls;
        checki "recheck calls are the only calls" (before + 1) (calls ());
        let after_apply = calls () in
        (* re-asking b's verdicts is pure cache traffic *)
        checkb "b : B unchanged" true
          (Para.instance_truth p "b" (Concept.Atom "B") = vb);
        checkb "b : D unchanged" true
          (Para.instance_truth p "b" (Concept.Atom "D") = vbd);
        checki "zero new tableau calls for the untouched component"
          after_apply (calls ());
        (* a's verdicts were evicted and do pay *)
        ignore (Para.instance_truth p "a" (Concept.Atom "C"));
        checkb "a's re-ask pays the tableau" true (calls () > after_apply)) ]

(* ------------------------------------------------------------------ *)
(* Guards: nominal-bearing TBox deltas must flush *)

let guard_tests =
  [ Alcotest.test_case "TBox-only delta with a nominal body flushes" `Quick
      (fun () ->
        (* Counterexample to per-atom eviction: o and b start in
           disjoint components, so a verdict about o has no A (and no b)
           in its provenance; the absorbable axiom A < {o} & C then
           merges every A-instance onto o without touching a single ABox
           assertion.  Evicting only the keys that mention A would serve
           o's verdict stale — the guard must flush. *)
        let kb =
          Kb4.make ~tbox:[]
            ~abox:[ Axiom.Instance_of ("o", Concept.Atom "D") ]
        in
        let s = Session.create kb in
        let o = Session.oracle s in
        let q = Oracle.Instance ("o", Concept.Atom "C") in
        let v0 = Oracle.check o q in
        checkb "o : C starts undetermined" false v0;
        let d1 =
          { Delta.empty with
            Delta.add_abox = [ Axiom.Instance_of ("b", Concept.Atom "A") ] }
        in
        let st1 = Session.apply s d1 in
        checkb "ABox delta in a fresh component does not flush" false
          st1.Oracle.flushed;
        checkb "verdict correctly retained across delta 1" v0
          (Oracle.check o q);
        let d2 =
          { Delta.empty with
            Delta.add_tbox =
              [ Kb4.Concept_inclusion
                  ( Kb4.Internal,
                    Concept.Atom "A",
                    Concept.And (Concept.One_of [ "o" ], Concept.Atom "C") )
              ] }
        in
        let st2 = Session.apply s d2 in
        checkb "nominal-bearing TBox delta flushes" true st2.Oracle.flushed;
        (* the merged b pulls C onto o: serving the pre-delta verdict
           would be an observable staleness, not just a formality *)
        checkb "o : C flipped by the merge" true (Oracle.check o q);
        let acc = Delta.apply_kb4 (Delta.apply_kb4 kb d1) d2 in
        let fresh = Session.create acc in
        checkb "incremental = rebuild after the nominal merge"
          (Oracle.check (Session.oracle fresh) q)
          (Oracle.check o q)) ]

(* ------------------------------------------------------------------ *)
(* Provenance lifetime tracks cache residency *)

let residency_tests =
  [ Alcotest.test_case "capacity evictions drop provenance too" `Quick
      (fun () ->
        let kb = Paper_examples.example1 in
        let s =
          Session.create
            ~config:{ Session.default_config with cache_capacity = 2 }
            kb
        in
        let o = Session.oracle s in
        let sg = Kb4.signature kb in
        List.iter
          (fun a ->
            List.iter
              (fun c ->
                ignore
                  (Oracle.check o (Oracle.Instance (a, Concept.Atom c)) : bool))
              sg.Axiom.concepts)
          sg.Axiom.individuals;
        let live = (Oracle.stats o).Oracle.cache.Verdict_cache.size in
        checkb "cache stayed within capacity" true (live <= 2);
        (* without the eviction hook this grows with every distinct query *)
        checki "one provenance entry per live verdict" live
          (List.length (Oracle.provenances o)));
    Alcotest.test_case "disabled cache records no provenance" `Quick
      (fun () ->
        let s =
          Session.create
            ~config:{ Session.default_config with cache_capacity = 0 }
            Paper_examples.example1
        in
        let p = Para.of_session s in
        ignore (Para.satisfiable p);
        ignore (Para.instance_truth p "bill" (Concept.Atom "Doctor"));
        checki "nothing recorded" 0
          (List.length (Oracle.provenances (Session.oracle s)))) ]

(* ------------------------------------------------------------------ *)
(* Index sharing across wrappers *)

let sharing_tests =
  [ Alcotest.test_case "of_oracle / of_engine wrappers share one cache"
      `Quick (fun () ->
        let o = Oracle.of_config Oracle.default_config Paper_examples.example1 in
        let e = Engine.of_oracle o in
        let p = Para.of_engine e in
        let s = Session.of_oracle o in
        let calls () = (Oracle.stats o).Oracle.tableau_calls in
        let v1 = Para.instance_truth p "bill" (Concept.Atom "Doctor") in
        let paid = calls () in
        checkb "first ask pays" true (paid > 0);
        let v2 = Engine.instance_truth e "bill" (Concept.Atom "Doctor") in
        let v3 =
          Para.instance_truth
            (Para.of_session s)
            "bill" (Concept.Atom "Doctor")
        in
        checkb "all wrappers agree" true (v1 = v2 && v2 = v3);
        checki "no wrapper re-paid the tableau" paid (calls ())) ]

(* ------------------------------------------------------------------ *)
(* Session config *)

let config_tests =
  [ Alcotest.test_case "config record and legacy arguments are equivalent"
      `Quick (fun () ->
        let kb = Paper_examples.example3 in
        let config =
          { Session.default_config with jobs = 2; cache_capacity = 64 }
        in
        let s = Session.create ~config kb in
        checki "jobs" 2 (Session.config s).Session.jobs;
        checki "cache_capacity" 64 (Session.config s).Session.cache_capacity;
        let via_session = Para.of_session s in
        let legacy = Para.create ~config:{ Oracle.default_config with Oracle.jobs = 2; cache_capacity = 64 } kb in
        checkb "same satisfiability" true
          (Para.satisfiable via_session = Para.satisfiable legacy);
        checkb "same contradictions" true
          (Para.contradictions via_session = Para.contradictions legacy);
        (* Para.session round-trips to the same shared stack *)
        checkb "session accessor shares the oracle" true
          (Session.oracle (Para.session via_session) == Session.oracle s));
    Alcotest.test_case "jobs are clamped to at least 1" `Quick (fun () ->
        let s =
          Session.create
            ~config:{ Session.default_config with jobs = 0 }
            Paper_examples.example1
        in
        checki "clamped" 1 (Session.config s).Session.jobs);
    Alcotest.test_case "apply_all on an empty list reports retained" `Quick
      (fun () ->
        let s = Session.create Paper_examples.example1 in
        let p = Para.of_session s in
        ignore (Para.satisfiable p);
        ignore (Para.instance_truth p "bill" (Concept.Atom "Doctor"));
        let size =
          (Oracle.stats (Session.oracle s)).Oracle.cache.Verdict_cache.size
        in
        checkb "warm-up cached verdicts" true (size > 0);
        let st = Session.apply_all s [] in
        checki "retained reports the live cache" size st.Oracle.retained;
        checki "nothing evicted" 0 st.Oracle.evicted;
        checkb "no flush" false st.Oracle.flushed) ]

let () =
  Alcotest.run "delta"
    [ ("parse", parse_tests);
      ("differential", differential_tests);
      ("retention", retention_tests);
      ("guards", guard_tests);
      ("residency", residency_tests);
      ("sharing", sharing_tests);
      ("config", config_tests) ]
