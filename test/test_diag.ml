(* PR 5 diagnostics: quantile estimation over the Obs log2 buckets, the
   flight recorder's ring semantics and dump format, the slow-query
   JSONL log, per-verdict cost accounting and the gauges round-trip. *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_obs_state enabled f =
  let saved = Obs.enabled () in
  Obs.set_enabled enabled;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled saved)
    f

let tmp_path suffix =
  let p = Filename.temp_file "dl4_diag" suffix in
  at_exit (fun () -> try Sys.remove p with Sys_error _ -> ());
  p

let json_of_string s =
  match Json_lite.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "JSON parse error: %s" e

let mem name j =
  match Json_lite.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing member %S" name

let num j =
  match Json_lite.to_num j with
  | Some x -> x
  | None -> Alcotest.fail "expected a number"

let arr j =
  match j with Json_lite.Arr l -> l | _ -> Alcotest.fail "expected an array"

(* ------------------------------------------------------------------ *)
(* Quantile estimation over log2 buckets *)

let close msg expected got =
  if Float.abs (expected -. got) > 1e-9 *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %g, got %g" msg expected got

let quantile_tests =
  [ Alcotest.test_case "empty histogram has no quantile" `Quick (fun () ->
        Alcotest.(check bool)
          "nan on empty" true
          (Float.is_nan (Obs.quantile_of_buckets [] 0.5)));
    Alcotest.test_case "exact at bucket boundaries" `Quick (fun () ->
        (* all mass in bucket 3 = [8, 16): q=0 and q=1 are the exact
           bucket bounds, q=0.5 the midpoint under linear interpolation *)
        let b = [ (3, 10) ] in
        close "q=0" 8.0 (Obs.quantile_of_buckets b 0.0);
        close "q=1" 16.0 (Obs.quantile_of_buckets b 1.0);
        close "q=0.5" 12.0 (Obs.quantile_of_buckets b 0.5);
        (* mass split across buckets 2 and 4: the median rank falls on
           the cumulative boundary between them, which is exactly the
           upper edge of bucket 2 *)
        let b = [ (2, 5); (4, 5) ] in
        close "cumulative boundary" 8.0 (Obs.quantile_of_buckets b 0.5);
        (* bucket 0 is [0, 2) *)
        close "bucket0 lower edge" 0.0 (Obs.quantile_of_buckets [ (0, 4) ] 0.0);
        close "bucket0 upper edge" 2.0 (Obs.quantile_of_buckets [ (0, 4) ] 1.0));
    Alcotest.test_case "within factor 2 inside a bucket" `Quick (fun () ->
        with_obs_state true (fun () ->
            (* durations drawn from several buckets; the estimator only
               sees counts, so each estimated quantile must stay within
               the true value's bucket: [true/2, true*2] is implied *)
            let h = Obs.histogram "test.diag.q" in
            let samples =
              List.concat_map
                (fun base -> List.init 10 (fun i -> base +. float_of_int i))
                [ 10.0; 100.0; 1000.0; 10000.0 ]
            in
            List.iter (Obs.observe_ns h) samples;
            let sorted = List.sort compare samples in
            let n = List.length sorted in
            List.iter
              (fun q ->
                (* a rank exactly on a cumulative boundary is ambiguous
                   between the elements on either side, so accept the
                   factor-2 envelope around both neighbours *)
                let rank = int_of_float (q *. float_of_int n) in
                let lo_truth = List.nth sorted (max 0 (rank - 1)) in
                let hi_truth = List.nth sorted (min (n - 1) rank) in
                let est = Obs.quantile_ns h q in
                if est < lo_truth /. 2.0 || est > hi_truth *. 2.0 then
                  Alcotest.failf
                    "q=%g: estimate %g not within factor 2 of true [%g, %g]" q
                    est lo_truth hi_truth)
              [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]));
    Alcotest.test_case "quantiles of a real workload histogram" `Quick
      (fun () ->
        with_obs_state true (fun () ->
            let t = Para.create Paper_examples.example1 in
            ignore (Para.contradictions t);
            let runs =
              List.find_opt
                (fun (n, _, _) -> n = "tableau.run_ns")
                (Obs.histograms ())
            in
            match runs with
            | None -> Alcotest.fail "tableau.run_ns not recorded"
            | Some (_, count, _) ->
                Alcotest.(check bool) "runs recorded" true (count > 0);
                let h = Obs.histogram "tableau.run_ns" in
                let p50 = Obs.quantile_ns h 0.5
                and p99 = Obs.quantile_ns h 0.99 in
                Alcotest.(check bool) "p50 positive" true (p50 > 0.0);
                Alcotest.(check bool) "p99 >= p50" true (p99 >= p50))) ]

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let flight_tests =
  [ Alcotest.test_case "ring wraps and dump stays well-formed" `Quick
      (fun () ->
        Flight.reset ();
        let n = Flight.capacity () + 137 in
        for i = 1 to n do
          Flight.record "test.ev" i (-1) (string_of_int i)
        done;
        let j = json_of_string (Flight.dump ()) in
        Alcotest.(check string)
          "schema" Flight.schema
          (Option.value ~default:"" (Json_lite.to_str (mem "schema" j)));
        let doms = arr (mem "domains" j) in
        Alcotest.(check int) "one ring" 1 (List.length doms);
        let d = List.hd doms in
        Alcotest.(check int) "total" n (int_of_float (num (mem "total" d)));
        Alcotest.(check int)
          "dropped" (n - Flight.capacity ())
          (int_of_float (num (mem "dropped" d)));
        let events = arr (mem "events" d) in
        Alcotest.(check int) "retained = capacity" (Flight.capacity ())
          (List.length events);
        (* oldest-first: the first retained event is the (dropped+1)-th
           recorded one, and ns never decreases *)
        let first = List.hd events in
        Alcotest.(check string)
          "oldest retained" (string_of_int (n - Flight.capacity () + 1))
          (Option.value ~default:"" (Json_lite.to_str (mem "note" first)));
        let _ =
          List.fold_left
            (fun prev e ->
              let ns = num (mem "ns" e) in
              if ns < prev then Alcotest.fail "ns not monotone";
              ns)
            neg_infinity events
        in
        Flight.reset ());
    Alcotest.test_case "partial ring dumps only recorded events" `Quick
      (fun () ->
        Flight.reset ();
        Flight.record "a" 1 2 "x";
        Flight.record "b" 3 4 "y";
        let j = json_of_string (Flight.dump ()) in
        let d = List.hd (arr (mem "domains" j)) in
        let events = arr (mem "events" d) in
        Alcotest.(check int) "two events" 2 (List.length events);
        Alcotest.(check int) "no dropped" 0
          (int_of_float (num (mem "dropped" d)));
        Flight.reset ());
    Alcotest.test_case "ring depth is configurable" `Quick (fun () ->
        let saved = Flight.capacity () in
        Flight.set_capacity 16;
        Flight.reset ();
        for i = 1 to 20 do
          Flight.record "cfg.ev" i (-1) (string_of_int i)
        done;
        let j = json_of_string (Flight.dump ()) in
        Alcotest.(check int) "dump reports new depth" 16
          (int_of_float (num (mem "capacity" j)));
        let d = List.hd (arr (mem "domains" j)) in
        let events = arr (mem "events" d) in
        Alcotest.(check int) "retained = configured depth" 16
          (List.length events);
        Alcotest.(check string)
          "oldest retained is the 5th"
          "5"
          (Option.value ~default:""
             (Json_lite.to_str (mem "note" (List.hd events))));
        Flight.set_capacity saved;
        Flight.reset ());
    Alcotest.test_case "trip writes an armed dump" `Quick (fun () ->
        let path = tmp_path ".flight.json" in
        Flight.reset ();
        Flight.arm ~path ();
        Flight.record "before" 0 0 "";
        Flight.trip "test trip";
        Flight.disarm ();
        let j = json_of_string (read path) in
        let d = List.hd (arr (mem "domains" j)) in
        let kinds =
          List.map
            (fun e ->
              Option.value ~default:"" (Json_lite.to_str (mem "kind" e)))
            (arr (mem "events" d))
        in
        Alcotest.(check bool) "trip event present" true
          (List.mem "trip" kinds);
        Flight.reset ());
    Alcotest.test_case "tableau hooks feed the recorder when armed" `Quick
      (fun () ->
        Flight.reset ();
        Flight.arm ();
        let t = Para.create Paper_examples.example1 in
        ignore (Para.satisfiable t);
        Flight.disarm ();
        Alcotest.(check bool)
          "events recorded" true
          (Flight.events_recorded () > 0);
        let j = json_of_string (Flight.dump ()) in
        let d = List.hd (arr (mem "domains" j)) in
        let kinds =
          List.map
            (fun e ->
              Option.value ~default:"" (Json_lite.to_str (mem "kind" e)))
            (arr (mem "events" d))
        in
        Alcotest.(check bool) "run.start seen" true
          (List.mem "run.start" kinds);
        Flight.reset ());
    Alcotest.test_case "disarmed recorder stays silent" `Quick (fun () ->
        (* the suite may run with DL4_FLIGHT armed from the environment:
           save and restore the switch around the silence check *)
        let was_on = !Flight.on in
        Flight.disarm ();
        Flight.reset ();
        let t = Para.create Paper_examples.example1 in
        ignore (Para.satisfiable t);
        Alcotest.(check int) "no events" 0 (Flight.events_recorded ());
        Flight.reset ();
        if was_on then Flight.arm ()) ]

(* ------------------------------------------------------------------ *)
(* Slow-query log *)

let slow_tests =
  [ Alcotest.test_case "threshold gates: disarmed means infinity" `Quick
      (fun () ->
        Alcotest.(check bool) "disarmed" false (Obs.slow_log_armed ());
        Alcotest.(check bool)
          "infinite threshold" true
          (Obs.slow_threshold_ms () = Float.infinity));
    Alcotest.test_case "slow verdicts land as parseable JSONL" `Quick
      (fun () ->
        let path = tmp_path ".slow.jsonl" in
        Sys.remove path;
        Obs.arm_slow_log ~threshold_ms:0.0 path;
        Fun.protect ~finally:Obs.disarm_slow_log (fun () ->
            let t = Para.create Paper_examples.example1 in
            ignore (Para.contradictions t));
        let lines =
          String.split_on_char '\n' (read path)
          |> List.filter (fun l -> String.trim l <> "")
        in
        Alcotest.(check bool) "records written" true (List.length lines > 0);
        List.iter
          (fun line ->
            let j = json_of_string line in
            Alcotest.(check bool) "wall_ms >= 0" true
              (num (mem "wall_ms" j) >= 0.0);
            Alcotest.(check bool)
              "query non-empty" true
              (Option.value ~default:"" (Json_lite.to_str (mem "query" j))
              <> "");
            ignore (mem "rules" j);
            ignore (mem "individuals" j);
            ignore (mem "cache_stored" j))
          lines);
    Alcotest.test_case "threshold above the workload writes nothing" `Quick
      (fun () ->
        let path = tmp_path ".slow.jsonl" in
        Sys.remove path;
        Obs.arm_slow_log ~threshold_ms:1e9 path;
        Fun.protect ~finally:Obs.disarm_slow_log (fun () ->
            let t = Para.create Paper_examples.example1 in
            ignore (Para.contradictions t));
        Alcotest.(check bool)
          "no file or empty" true
          ((not (Sys.file_exists path)) || String.trim (read path) = "")) ]

(* ------------------------------------------------------------------ *)
(* Per-verdict cost accounting *)

let cost_tests =
  [ Alcotest.test_case "computed verdicts carry cost records" `Quick
      (fun () ->
        let o = Oracle.of_config Oracle.default_config Paper_examples.example1 in
        let q = Oracle.Instance ("john", Concept.Atom "Doctor") in
        ignore (Oracle.check o q);
        (match Oracle.cost o q with
        | None -> Alcotest.fail "no cost recorded"
        | Some c ->
            Alcotest.(check bool) "runs >= 1" true (c.Oracle.c_runs >= 1);
            Alcotest.(check bool) "wall >= 0" true (c.Oracle.c_wall_ns >= 0.0);
            Alcotest.(check int) "no hits yet" 0 c.Oracle.c_hits;
            Alcotest.(check string) "kind" "instance" c.Oracle.c_kind);
        ignore (Oracle.check o q);
        (match Oracle.cost o q with
        | None -> Alcotest.fail "cost lost on hit"
        | Some c -> Alcotest.(check int) "hit counted" 1 c.Oracle.c_hits);
        let totals = Oracle.cost_totals o in
        Alcotest.(check bool) "verdicts counted" true (totals.Oracle.verdicts >= 1);
        Alcotest.(check bool) "served counted" true
          (totals.Oracle.cache_served >= 1));
    Alcotest.test_case "costs sorted by wall time" `Quick (fun () ->
        let t = Para.create Paper_examples.example1 in
        ignore (Para.contradictions t);
        let cs = Oracle.costs (Para.oracle t) in
        Alcotest.(check bool) "non-empty" true (cs <> []);
        let _ =
          List.fold_left
            (fun prev (c : Oracle.cost) ->
              if c.Oracle.c_wall_ns > prev then
                Alcotest.fail "not sorted descending";
              c.Oracle.c_wall_ns)
            infinity cs
        in
        ());
    Alcotest.test_case "capacity 0: totals survive, per-key does not" `Quick
      (fun () ->
        let o = Oracle.of_config { Oracle.default_config with Oracle.cache_capacity = 0 } Paper_examples.example1 in
        let q = Oracle.Instance ("john", Concept.Atom "Doctor") in
        ignore (Oracle.check o q);
        ignore (Oracle.check o q);
        Alcotest.(check bool) "no per-key record" true (Oracle.cost o q = None);
        Alcotest.(check int) "no records" 0 (List.length (Oracle.costs o));
        let totals = Oracle.cost_totals o in
        Alcotest.(check int) "both misses computed" 2 totals.Oracle.verdicts;
        Alcotest.(check int) "nothing served" 0 totals.Oracle.cache_served);
    Alcotest.test_case "deltas drop per-key costs, keep totals" `Quick
      (fun () ->
        let s = Session.create Paper_examples.example1 in
        let p = Para.of_session s in
        ignore (Para.contradictions p);
        let before = (Session.cost_totals s).Oracle.verdicts in
        Alcotest.(check bool) "work done" true (before > 0);
        let d =
          { Delta.add_abox = [ Axiom.Instance_of ("zz", Concept.Atom "Doctor") ];
            retract_abox = [];
            add_tbox = [] }
        in
        ignore (Session.apply s d);
        Alcotest.(check bool)
          "totals survive the delta" true
          ((Session.cost_totals s).Oracle.verdicts >= before);
        (* retained verdicts keep their cost records: both lists match *)
        Alcotest.(check bool)
          "records track retained verdicts" true
          (List.length (Session.costs s)
          = List.length (Oracle.provenances (Session.oracle s))));
    Alcotest.test_case "worker-computed costs fold into the coordinator"
      `Quick (fun () ->
        let t = Para.create ~config:{ Oracle.default_config with Oracle.jobs = 2 } Paper_examples.example1 in
        ignore (Para.contradictions t);
        let cs = Oracle.costs (Para.oracle t) in
        Alcotest.(check bool) "records exist" true (cs <> []);
        let totals = Oracle.cost_totals (Para.oracle t) in
        Alcotest.(check bool) "totals match records" true
          (totals.Oracle.verdicts >= List.length cs)) ]

(* ------------------------------------------------------------------ *)
(* Gauges and registry round-trips *)

let gauge_tests =
  [ Alcotest.test_case "gauges round-trip through metrics_json" `Quick
      (fun () ->
        with_obs_state true (fun () ->
            let g = Obs.gauge "test.diag.gauge" in
            Obs.set_gauge g 42.5;
            Alcotest.(check bool)
              "gauges () sees it" true
              (List.mem_assoc "test.diag.gauge" (Obs.gauges ()));
            close "gauges () value" 42.5
              (List.assoc "test.diag.gauge" (Obs.gauges ()));
            let j = json_of_string (Obs.metrics_json ()) in
            close "metrics_json value" 42.5 (num (mem "test.diag.gauge" j))));
    Alcotest.test_case "oracle cache-size gauge tracks the cache" `Quick
      (fun () ->
        with_obs_state true (fun () ->
            let o = Oracle.of_config Oracle.default_config Paper_examples.example1 in
            ignore (Oracle.check o Oracle.Consistent);
            let g = List.assoc_opt "oracle.cache.size" (Obs.gauges ()) in
            match g with
            | None -> Alcotest.fail "oracle.cache.size not registered"
            | Some v -> Alcotest.(check bool) "positive" true (v >= 1.0)));
    Alcotest.test_case "delta counters reach the registry" `Quick (fun () ->
        with_obs_state true (fun () ->
            let s = Session.create Paper_examples.example1 in
            ignore (Para.satisfiable (Para.of_session s));
            let d =
              { Delta.add_abox =
                  [ Axiom.Instance_of ("zz", Concept.Atom "Doctor") ];
                retract_abox = [];
                add_tbox = [] }
            in
            ignore (Session.apply s d);
            let c =
              List.assoc_opt "oracle.delta.applied" (Obs.counters ())
            in
            Alcotest.(check (option int)) "one delta" (Some 1) c)) ]

let () =
  Alcotest.run "diag"
    [ ("quantiles", quantile_tests);
      ("flight", flight_tests);
      ("slow_log", slow_tests);
      ("costs", cost_tests);
      ("gauges", gauge_tests) ]
