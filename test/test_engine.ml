(* Tests for the Dl_engine subsystem: canonical query keys, the LRU verdict
   cache, told-seeded classification and hierarchy-pruned realization —
   differentially tested against the naive Para baselines. *)

open Concept

let kb_of src = Surface.parse_kb4_exn src
let tv = Alcotest.testable Truth.pp Truth.equal

let hierarchy =
  Alcotest.(list (pair string (list string)))

(* ------------------------------------------------------------------ *)
(* Qkey: canonical keys *)

let same a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s ~ %s" (Concept.to_string a) (Concept.to_string b))
    true
    (Qkey.equal (Qkey.of_concept a) (Qkey.of_concept b))

let distinct a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s <> %s" (Concept.to_string a) (Concept.to_string b))
    false
    (Qkey.equal (Qkey.of_concept a) (Qkey.of_concept b))

let qkey_tests =
  [ Alcotest.test_case "commuted conjunction shares a key" `Quick (fun () ->
        same (And (Atom "A", Atom "B")) (And (Atom "B", Atom "A")));
    Alcotest.test_case "reassociated disjunction shares a key" `Quick
      (fun () ->
        same
          (Or (Atom "A", Or (Atom "B", Atom "C")))
          (Or (Or (Atom "C", Atom "A"), Atom "B")));
    Alcotest.test_case "duplicate conjuncts collapse" `Quick (fun () ->
        same (And (Atom "A", Atom "A")) (Atom "A"));
    Alcotest.test_case "double negation collapses" `Quick (fun () ->
        same (Not (Not (Atom "A"))) (Atom "A"));
    Alcotest.test_case "negation is pushed inside (NNF)" `Quick (fun () ->
        same
          (Not (And (Atom "A", Atom "B")))
          (Or (Not (Atom "A"), Not (Atom "B"))));
    Alcotest.test_case "nominal order is canonical" `Quick (fun () ->
        same (One_of [ "b"; "a"; "b" ]) (One_of [ "a"; "b" ]));
    Alcotest.test_case "units are absorbed" `Quick (fun () ->
        same (And (Atom "A", Top)) (Atom "A");
        same (Or (Atom "A", Bottom)) (Atom "A");
        same (And (Atom "A", Bottom)) Bottom);
    Alcotest.test_case "different concepts keep different keys" `Quick
      (fun () ->
        distinct (Atom "A") (Atom "B");
        distinct (And (Atom "A", Atom "B")) (Or (Atom "A", Atom "B"));
        distinct
          (Exists (Role.name "r", Atom "A"))
          (Exists (Role.name "s", Atom "A")));
    Alcotest.test_case "canonical form under quantifiers" `Quick (fun () ->
        same
          (Exists (Role.name "r", And (Atom "B", Atom "A")))
          (Exists (Role.name "r", And (Atom "A", Atom "B"))))
  ]

(* ------------------------------------------------------------------ *)
(* Verdict_cache: LRU behaviour and counters *)

module Int_cache = Verdict_cache.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let cache_tests =
  [ Alcotest.test_case "hit and miss counters" `Quick (fun () ->
        let c = Int_cache.create ~capacity:8 in
        Alcotest.(check (option string)) "miss" None (Int_cache.find c 1);
        Int_cache.add c 1 "one";
        Alcotest.(check (option string))
          "hit" (Some "one") (Int_cache.find c 1);
        let s = Int_cache.stats c in
        Alcotest.(check int) "hits" 1 s.Verdict_cache.hits;
        Alcotest.(check int) "misses" 1 s.Verdict_cache.misses);
    Alcotest.test_case "LRU eviction order" `Quick (fun () ->
        let c = Int_cache.create ~capacity:2 in
        Int_cache.add c 1 "one";
        Int_cache.add c 2 "two";
        ignore (Int_cache.find c 1);
        (* 2 is now least recent *)
        Int_cache.add c 3 "three";
        Alcotest.(check (option string))
          "1 survives" (Some "one") (Int_cache.find c 1);
        Alcotest.(check (option string)) "2 evicted" None (Int_cache.find c 2);
        Alcotest.(check (option string))
          "3 present" (Some "three") (Int_cache.find c 3);
        Alcotest.(check int) "one eviction" 1
          (Int_cache.stats c).Verdict_cache.evictions);
    Alcotest.test_case "overwrite refreshes, does not grow" `Quick (fun () ->
        let c = Int_cache.create ~capacity:2 in
        Int_cache.add c 1 "one";
        Int_cache.add c 2 "two";
        Int_cache.add c 1 "uno";
        Int_cache.add c 3 "three";
        Alcotest.(check (option string))
          "refreshed 1 survives" (Some "uno") (Int_cache.find c 1);
        Alcotest.(check (option string)) "2 evicted" None (Int_cache.find c 2));
    Alcotest.test_case "capacity 0 disables storage" `Quick (fun () ->
        let c = Int_cache.create ~capacity:0 in
        let computed = ref 0 in
        let f () = incr computed; "v" in
        Alcotest.(check string) "computed" "v" (Int_cache.find_or_add c 1 f);
        Alcotest.(check string) "recomputed" "v" (Int_cache.find_or_add c 1 f);
        Alcotest.(check int) "no memoization" 2 !computed;
        Alcotest.(check int) "empty" 0 (Int_cache.length c));
    Alcotest.test_case "find_or_add memoizes" `Quick (fun () ->
        let c = Int_cache.create ~capacity:4 in
        let computed = ref 0 in
        let f () = incr computed; "v" in
        ignore (Int_cache.find_or_add c 1 f);
        ignore (Int_cache.find_or_add c 1 f);
        Alcotest.(check int) "computed once" 1 !computed);
    Alcotest.test_case "on_evict fires on capacity eviction only" `Quick
      (fun () ->
        let c = Int_cache.create ~capacity:2 in
        let evicted = ref [] in
        Int_cache.on_evict c (fun k -> evicted := k :: !evicted);
        Int_cache.add c 1 "one";
        Int_cache.add c 2 "two";
        Int_cache.add c 3 "three";
        Alcotest.(check (list int)) "LRU key reported" [ 1 ] !evicted;
        (* explicit invalidation and flushes stay silent *)
        ignore (Int_cache.remove c 2 : bool);
        Int_cache.purge c;
        Alcotest.(check (list int)) "remove/purge do not fire" [ 1 ] !evicted)
  ]

(* ------------------------------------------------------------------ *)
(* Classification: engine = naive on the paper's KBs and random KBs *)

let check_classification ?(label = "") kb =
  let t = Para.create kb in
  let naive = Para.classify_naive t in
  let e = Engine.of_config Oracle.default_config kb in
  let cls = Engine.classification e in
  Alcotest.check hierarchy
    (label ^ " engine classification = naive all-pairs")
    naive cls.Classify.supers;
  Alcotest.check hierarchy
    (label ^ " Para.classify (delegated) = naive")
    naive (Para.classify t);
  let s = cls.Classify.stats in
  Alcotest.(check bool)
    (label ^ " engine uses no more tableau calls than naive")
    true
    (s.Classify.tableau_tests <= s.Classify.naive_tests)

let gen_kb seed =
  Gen.kb4
    { Gen.default with
      seed;
      n_concepts = 6;
      n_individuals = 5;
      n_tbox = 8;
      n_abox = 12;
      max_depth = 1;
      inconsistency_rate = 0.15 }

let classification_tests =
  [ Alcotest.test_case "paper examples 1-5" `Quick (fun () ->
        List.iter
          (fun (label, kb) -> check_classification ~label kb)
          [ ("ex1", Paper_examples.example1);
            ("ex2", Paper_examples.example2);
            ("ex3/ex5", Paper_examples.example3);
            ("ex4", Paper_examples.example4) ]);
    Alcotest.test_case "random KBs" `Slow (fun () ->
        List.iter
          (fun seed ->
            check_classification
              ~label:(Printf.sprintf "seed %d" seed)
              (gen_kb seed))
          [ 1; 2; 3; 4 ]);
    Alcotest.test_case "told chain is classified without tableau calls"
      `Quick (fun () ->
        (* A < B < C < D: all 6 subsumptions follow from the told closure,
           only the 6 refutations need the oracle *)
        let kb = kb_of "A < B. B < C. C < D. x : A." in
        let e = Engine.of_config Oracle.default_config kb in
        let s = (Engine.classification e).Classify.stats in
        Alcotest.(check int) "told hits" 6 s.Classify.told_hits;
        Alcotest.(check bool) "strictly fewer calls than naive" true
          (s.Classify.tableau_tests < s.Classify.naive_tests));
    Alcotest.test_case "told-equivalent atoms land in one taxonomy class"
      `Quick (fun () ->
        let kb = kb_of "A < B. B < A. A < C. x : A." in
        let e = Engine.of_config Oracle.default_config kb in
        match Engine.taxonomy e with
        | [ ([ "A"; "B" ], [ "C" ]); ([ "C" ], []) ] -> ()
        | tax ->
            Alcotest.failf "unexpected taxonomy: %s"
              (String.concat "; "
                 (List.map
                    (fun (cls, sup) ->
                      "[" ^ String.concat "," cls ^ "]<"
                      ^ String.concat "," sup)
                    tax)))
  ]

(* ------------------------------------------------------------------ *)
(* Verdict cache: identical answers, hits on repeats *)

let cache_verdict_tests =
  [ Alcotest.test_case "cached verdicts equal uncached, hits accrue" `Quick
      (fun () ->
        let kb = gen_kb 9 in
        let signature = Kb4.signature kb in
        let queries =
          List.concat_map
            (fun a ->
              List.map (fun c -> (a, Concept.Atom c)) signature.Axiom.concepts)
            signature.Axiom.individuals
        in
        let t = Para.create kb in
        let cached = Engine.of_config Oracle.default_config kb in
        let uncached = Engine.of_config { Oracle.default_config with Oracle.cache_capacity = 0 } kb in
        List.iter
          (fun (a, c) ->
            let expected = Para.instance_truth t a c in
            Alcotest.check tv "cached = Para" expected
              (Engine.instance_truth cached a c);
            Alcotest.check tv "uncached = Para" expected
              (Engine.instance_truth uncached a c))
          queries;
        let before = (Engine.stats cached).Engine.cache.Verdict_cache.hits in
        List.iter
          (fun (a, c) ->
            let expected = Para.instance_truth t a c in
            Alcotest.check tv "repeat run agrees" expected
              (Engine.instance_truth cached a c))
          queries;
        let s = Engine.stats cached in
        Alcotest.(check bool) "hits > 0 on repeated queries" true
          (s.Engine.cache.Verdict_cache.hits > before);
        Alcotest.(check int) "repeat pass is answered entirely from cache"
          (before + (2 * List.length queries))
          s.Engine.cache.Verdict_cache.hits;
        (* uncached engine paid every call *)
        let su = Engine.stats uncached in
        Alcotest.(check int) "uncached pays per query"
          (2 * List.length queries)
          su.Engine.tableau_calls);
    Alcotest.test_case "canonically equal queries share one verdict" `Quick
      (fun () ->
        let kb = kb_of "x : A. x : B." in
        let e = Engine.of_config Oracle.default_config kb in
        ignore (Engine.entails_instance e "x" (And (Atom "A", Atom "B")));
        let misses = (Engine.stats e).Engine.cache.Verdict_cache.misses in
        ignore (Engine.entails_instance e "x" (And (Atom "B", Atom "A")));
        ignore
          (Engine.entails_instance e "x"
             (And (Atom "A", And (Atom "B", Atom "A"))));
        let s = Engine.stats e in
        Alcotest.(check int) "no further misses" misses
          s.Engine.cache.Verdict_cache.misses;
        Alcotest.(check int) "two hits" 2 s.Engine.cache.Verdict_cache.hits)
  ]

(* ------------------------------------------------------------------ *)
(* Realization: agrees with per-individual instance_truth *)

let check_realization ?(label = "") kb =
  let t = Para.create kb in
  let e = Engine.of_config Oracle.default_config kb in
  let r = Engine.realization e in
  List.iter
    (fun (entry : Realize.entry) ->
      List.iter
        (fun (c, v) ->
          Alcotest.check tv
            (Printf.sprintf "%s %s : %s" label entry.Realize.name c)
            (Para.instance_truth t entry.Realize.name (Concept.Atom c))
            v)
        entry.Realize.types)
    r.Realize.entries

let realization_tests =
  [ Alcotest.test_case "paper examples" `Quick (fun () ->
        List.iter
          (fun (label, kb) -> check_realization ~label kb)
          [ ("ex1", Paper_examples.example1);
            ("ex2", Paper_examples.example2);
            ("ex3", Paper_examples.example3);
            ("ex4", Paper_examples.example4) ]);
    Alcotest.test_case "random KBs" `Slow (fun () ->
        List.iter
          (fun seed ->
            check_realization ~label:(Printf.sprintf "seed %d" seed)
              (gen_kb seed))
          [ 5; 6 ]);
    Alcotest.test_case "most-specific types on a chain" `Quick (fun () ->
        let kb = kb_of "A < B. B < C. x : A. y : B." in
        let e = Engine.of_config Oracle.default_config kb in
        let entry name =
          List.find
            (fun (en : Realize.entry) -> en.Realize.name = name)
            (Engine.realization e).Realize.entries
        in
        Alcotest.(check (list string))
          "msc x" [ "A" ] (entry "x").Realize.most_specific;
        Alcotest.(check (list string))
          "msc y" [ "B" ] (entry "y").Realize.most_specific);
    Alcotest.test_case "realization prunes below a refuted concept" `Quick
      (fun () ->
        (* y is told nothing: once y ∉ C is settled, A and B (told below C)
           must not be checked positively *)
        let kb = kb_of "A < B. B < C. x : A. y : D." in
        let e = Engine.of_config Oracle.default_config kb in
        let r = Engine.realization e in
        let s = r.Realize.stats in
        Alcotest.(check bool) "pruned > 0" true (s.Realize.pruned > 0);
        Alcotest.(check bool) "fewer checks than naive" true
          (s.Realize.positive_checks + s.Realize.negative_checks
          < s.Realize.naive_checks))
  ]

let () =
  Alcotest.run "engine"
    [ ("qkey", qkey_tests);
      ("verdict_cache", cache_tests);
      ("classification", classification_tests);
      ("cached_verdicts", cache_verdict_tests);
      ("realization", realization_tests) ]
