(* PR 3 observability tests.

   - Zero-overhead contract: with no sink armed, a full engine workload
     (classification, realization, contradiction grid at pool width
     DL4_JOBS) must leave every counter at zero, every histogram empty
     and no span records.  Provenance is the exception since PR 4: the
     incremental-update dependency index needs it, so it is recorded
     unconditionally, sinks armed or not.
   - Grep guard: lib/engine and lib/core present their statistics through
     the Dl_obs registry / the typed stats records, never via Printf —
     the sources are attached as test dependencies (see test/dune).
   - Trace correctness: with tracing on, the span records of a classify +
     contradiction run at jobs=2 form a well-nested forest (parents exist,
     child intervals sit inside parent intervals), parallel batches carry
     worker-shard spans with pairwise-distinct domain ids, and every
     per-verdict provenance entry lists a subset of the KB's named
     individuals, jointly covering all of them (the contradiction grid
     queries every individual) — paper Examples 1-4; Example 5 shares
     Example 3's KB.
   - Invariance: answers are identical with tracing on or off, at pool
     widths 1 and 2. *)

let jobs =
  match Sys.getenv_opt "DL4_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The suite may run with DL4_TRACE armed (the CI trace job): save and
   restore the ambient switch so the at_exit trace writer still sees
   whatever state the environment asked for. *)
let with_obs_state enabled f =
  let saved = Obs.enabled () in
  Obs.set_enabled enabled;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled saved)
    f

let examples =
  [ ("example1", Paper_examples.example1);
    ("example2", Paper_examples.example2);
    ("example3", Paper_examples.example3);
    ("example4", Paper_examples.example4) ]

let workload ~jobs kb =
  let e = Engine.of_config { Oracle.default_config with Oracle.jobs = jobs } kb in
  let taxonomy = Engine.classify e in
  let t = Para.of_engine e in
  let contradictions = Para.contradictions t in
  (e, (taxonomy, contradictions))

(* ------------------------------------------------------------------ *)
(* Zero overhead when disabled *)

let disabled_tests =
  [ Alcotest.test_case "disabled sinks record nothing" `Quick (fun () ->
        with_obs_state false (fun () ->
            List.iter
              (fun (_, kb) ->
                let e, _ = workload ~jobs kb in
                ignore (Engine.realization e);
                (* provenance is recorded even with sinks off: the
                   dependency index behind Oracle.apply depends on it *)
                Alcotest.(check bool)
                  "provenance captured regardless of sinks" true
                  (Oracle.provenances (Engine.oracle e) <> []))
              examples;
            List.iter
              (fun (name, v) ->
                Alcotest.(check int) (name ^ " stays zero") 0 v)
              (Obs.counters ());
            List.iter
              (fun (name, count, sum) ->
                Alcotest.(check int) (name ^ " count stays zero") 0 count;
                Alcotest.(check (float 0.0))
                  (name ^ " sum stays zero") 0.0 sum)
              (Obs.histograms ());
            Alcotest.(check int) "no spans recorded" 0 (Obs.span_count ())))
  ]

(* ------------------------------------------------------------------ *)
(* Guard: stats leave lib/engine and lib/core through the registry or
   the typed stats records, never as ad-hoc Printf output. *)

let guard_tests =
  let scan_dir dir =
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ml")
      |> List.sort String.compare
    in
    Alcotest.(check bool) (dir ^ " sources are visible") true (files <> []);
    let pat = "Printf." in
    let offenders = ref [] in
    List.iter
      (fun f ->
        let src = read (Filename.concat dir f) in
        let n = String.length src and m = String.length pat in
        for i = 0 to n - m do
          if String.sub src i m = pat then offenders := (f, i) :: !offenders
        done)
      files;
    List.rev !offenders
  in
  [ Alcotest.test_case "no Printf-based stats in lib/engine and lib/core"
      `Quick (fun () ->
        let dir sub = Filename.concat ".." (Filename.concat "lib" sub) in
        Alcotest.(check (list (pair string int)))
          "Printf uses in lib/engine" [] (scan_dir (dir "engine"));
        Alcotest.(check (list (pair string int)))
          "Printf uses in lib/core" [] (scan_dir (dir "core"))) ]

(* ------------------------------------------------------------------ *)
(* Trace correctness *)

let eps_ns = 10_000.0 (* gettimeofday resolution is 1us; allow 10us *)

let span_end (r : Obs.span_record) = r.r_start_ns +. r.r_dur_ns

let check_forest label records =
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (r : Obs.span_record) ->
      Alcotest.(check bool) (label ^ ": span ids positive") true (r.r_id > 0);
      Alcotest.(check bool)
        (label ^ ": span ids unique") false (Hashtbl.mem ids r.r_id);
      Hashtbl.replace ids r.r_id r)
    records;
  List.iter
    (fun (r : Obs.span_record) ->
      Alcotest.(check bool)
        (label ^ ": duration non-negative") true (r.r_dur_ns >= 0.0);
      if r.r_parent <> 0 then
        match Hashtbl.find_opt ids r.r_parent with
        | None ->
            Alcotest.failf "%s: span %s has unknown parent %d" label r.r_name
              r.r_parent
        | Some p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s starts inside %s" label r.r_name
                 p.Obs.r_name)
              true
              (r.r_start_ns >= p.Obs.r_start_ns -. eps_ns);
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s ends inside %s" label r.r_name
                 p.Obs.r_name)
              true
              (span_end r <= span_end p +. eps_ns))
    records

(* oracle.shard spans under one batch must run on pairwise-distinct
   domains; returns the largest shard group seen *)
let check_shards label records =
  let by_batch = Hashtbl.create 8 in
  List.iter
    (fun (r : Obs.span_record) ->
      if r.r_name = "oracle.shard" then
        Hashtbl.replace by_batch r.r_parent
          (r :: (Option.value ~default:[] (Hashtbl.find_opt by_batch r.r_parent))))
    records;
  Hashtbl.fold
    (fun _parent shards widest ->
      let domains =
        List.filter_map
          (fun (r : Obs.span_record) -> List.assoc_opt "domain" r.r_attrs)
          shards
      in
      Alcotest.(check int)
        (label ^ ": every shard names its domain")
        (List.length shards) (List.length domains);
      Alcotest.(check int)
        (label ^ ": shard domains pairwise distinct")
        (List.length domains)
        (List.length (List.sort_uniq String.compare domains));
      max widest (List.length shards))
    by_batch 0

(* Like the CLI's cli.<cmd> span, the test opens one root over the whole
   workload; it must cover >= 95% of the union of everything recorded —
   no span may leak (temporally) outside it. *)
let check_roots label records =
  let root =
    match
      List.filter (fun (r : Obs.span_record) -> r.r_name = "test.workload")
        records
    with
    | [ r ] -> r
    | rs ->
        Alcotest.failf "%s: want exactly one test.workload root, got %d" label
          (List.length rs)
  in
  Alcotest.(check int) (label ^ ": the root has no parent") 0 root.r_parent;
  let start =
    List.fold_left (fun a (r : Obs.span_record) -> min a r.r_start_ns)
      infinity records
  and stop =
    List.fold_left (fun a r -> max a (span_end r)) neg_infinity records
  in
  let extent = stop -. start in
  if extent > 0.0 then
    Alcotest.(check bool)
      (Printf.sprintf "%s: root covers >= 95%% of the traced extent (%.1f%%)"
         label
         (root.r_dur_ns /. extent *. 100.))
      true
      (root.r_dur_ns >= 0.95 *. extent)

let sorted_individuals kb =
  List.sort_uniq String.compare (Kb4.signature kb).Axiom.individuals

let trace_tests =
  List.map
    (fun (label, kb) ->
      Alcotest.test_case (label ^ " trace is well-formed") `Quick (fun () ->
          let widest, provs =
            with_obs_state true (fun () ->
                let e, _ =
                  Obs.with_span ~cat:"test" "test.workload" (fun () ->
                      workload ~jobs:2 kb)
                in
                let records = Obs.spans () in
                Alcotest.(check bool)
                  (label ^ ": spans were recorded") true (records <> []);
                check_forest label records;
                let widest = check_shards label records in
                check_roots label records;
                (widest, Oracle.provenances (Engine.oracle e)))
          in
          Alcotest.(check bool)
            (label ^ ": some batch fanned out to >= 2 shards") true
            (widest >= 2);
          let expected = sorted_individuals kb in
          Alcotest.(check bool)
            (label ^ ": provenance was captured") true (provs <> []);
          (* selective harvest: each verdict depends on a subset of the
             KB's individuals; the contradiction grid queries every
             individual, so jointly the entries cover all of them *)
          List.iter
            (fun (p : Oracle.prov_entry) ->
              Alcotest.(check bool)
                (label ^ ": provenance stays within the KB's individuals")
                true
                (List.for_all (fun a -> List.mem a expected) p.Oracle.individuals))
            provs;
          let union =
            List.sort_uniq String.compare
              (List.concat_map
                 (fun (p : Oracle.prov_entry) -> p.Oracle.individuals)
                 provs)
          in
          Alcotest.(check (list string))
            (label ^ ": provenance jointly covers the KB's individuals")
            expected union))
    examples

(* ------------------------------------------------------------------ *)
(* Invariance: tracing and pool width never change an answer *)

let invariance_tests =
  List.map
    (fun (label, kb) ->
      Alcotest.test_case (label ^ " answers invariant under tracing/jobs")
        `Quick (fun () ->
          let baseline =
            with_obs_state false (fun () -> snd (workload ~jobs:1 kb))
          in
          let traced1 =
            with_obs_state true (fun () -> snd (workload ~jobs:1 kb))
          in
          let traced2 =
            with_obs_state true (fun () -> snd (workload ~jobs:2 kb))
          in
          let plain2 =
            with_obs_state false (fun () -> snd (workload ~jobs:2 kb))
          in
          Alcotest.(check bool)
            (label ^ ": tracing on, jobs=1") true (traced1 = baseline);
          Alcotest.(check bool)
            (label ^ ": tracing on, jobs=2") true (traced2 = baseline);
          Alcotest.(check bool)
            (label ^ ": tracing off, jobs=2") true (plain2 = baseline)))
    examples

let () =
  Alcotest.run "obs"
    [ ("disabled", disabled_tests);
      ("guard", guard_tests);
      ("trace", trace_tests);
      ("invariance", invariance_tests) ]
