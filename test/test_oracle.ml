(* PR 2 oracle-layer tests.

   - The grep guard that keeps lib/core's query paths free of direct
     tableau verdicts: every entailment must route through Engine.Oracle.
   - Differential tests: the oracle-routed, batched/pruned implementations
     (Cq.answers, Cq.all_bindings, Para.retrieve) agree with their _naive
     references on the paper examples, the shipped KB files and random KBs.
   - Pool invariance: --jobs N never changes any answer, only statistics.
   - Oracle batching: check_all agrees with pointwise check, with and
     without a cache.
   - Warm-cache behavior: a repeated conjunctive query pays zero tableau
     calls; short-circuit and staged pruning provably skip oracle work. *)

open QCheck2

let tv = Alcotest.testable Truth.pp Truth.equal

let jobs =
  match Sys.getenv_opt "DL4_JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Guard: no direct Reasoner calls in lib/core query paths.  The sources
   are attached as test dependencies (see test/dune); the only tolerated
   use is [Reasoner.find_model] — model extraction is not an entailment
   verdict, so it does not bypass the oracle's cache or pool. *)

let guard_tests =
  [ Alcotest.test_case "lib/core routes every verdict through the oracle"
      `Quick (fun () ->
        let dir = Filename.concat ".." (Filename.concat "lib" "core") in
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".ml")
          |> List.sort String.compare
        in
        Alcotest.(check bool) "sources are visible" true (files <> []);
        let pat = "Reasoner." and allowed = "Reasoner.find_model" in
        let offenders = ref [] in
        List.iter
          (fun f ->
            let src = read (Filename.concat dir f) in
            let n = String.length src in
            let rec scan i =
              if i < n then
                match String.index_from_opt src i 'R' with
                | None -> ()
                | Some j ->
                    let has s =
                      j + String.length s <= n
                      && String.sub src j (String.length s) = s
                    in
                    if has pat && not (has allowed) then
                      offenders := (f, j) :: !offenders;
                    scan (j + 1)
            in
            scan 0)
          files;
        Alcotest.(check (list (pair string int)))
          "direct tableau verdicts in lib/core" [] (List.rev !offenders)) ]

(* ------------------------------------------------------------------ *)
(* Fixtures: the paper examples, the shipped KB files, and the clinic KB
   the CQ tests use. *)

let kb_dir = Filename.concat (Filename.concat ".." "examples") "kb"
let parse_file f = Surface.parse_kb4_exn (read (Filename.concat kb_dir f))

let clinic_kb =
  Surface.parse_kb4_exn
    {|
    Surgeon < Doctor.
    hasPatient(bill, mary).
    mary : Patient.
    bill : Surgeon.
    dana : Doctor.
    dana : ~Surgeon.
    eve : Doctor.
    eve : ~Doctor.
    |}

let fixtures () =
  [ ("example1", Paper_examples.example1);
    ("example2", Paper_examples.example2);
    ("example3", Paper_examples.example3);
    ("example4", Paper_examples.example4);
    ("tweety", parse_file "tweety.dl4");
    ("access_control", parse_file "access_control.dl4");
    ("clinic", clinic_kb) ]

(* Queries built from a KB's own signature, so every fixture exercises the
   enumerator: a retrieval atom, a contradictory (always-pruned) pair, and
   a role join when the KB has a role. *)
let queries_for kb =
  let s = Kb4.signature kb in
  match s.Axiom.concepts with
  | [] -> []
  | c :: _ ->
      let atom = Concept.Atom c in
      let base =
        Cq.make ~head:[ "x" ] ~body:[ Cq.Concept_atom (atom, Cq.Var "x") ]
      in
      let pruned =
        Cq.make ~head:[ "x" ]
          ~body:
            [ Cq.Concept_atom (atom, Cq.Var "x");
              Cq.Concept_atom (Concept.Not atom, Cq.Var "x") ]
      in
      let joins =
        match s.Axiom.roles with
        | [] -> []
        | r :: _ ->
            [ Cq.make ~head:[ "x"; "y" ]
                ~body:
                  [ Cq.Concept_atom (atom, Cq.Var "x");
                    Cq.Role_atom (Role.name r, Cq.Var "x", Cq.Var "y") ] ]
      in
      base :: pruned :: joins

let answers_t = Alcotest.(list (pair (list string) tv))
let bindings_t = Alcotest.(list (pair (list (pair string string)) tv))
let retrieve_t = Alcotest.(list (pair string tv))

(* ------------------------------------------------------------------ *)
(* Differential: oracle-routed vs naive reference paths. *)

let differential_tests =
  List.concat_map
    (fun (name, kb) ->
      [ Alcotest.test_case (name ^ ": Cq answers/bindings match naive") `Quick
          (fun () ->
            let t = Para.create kb in
            List.iter
              (fun q ->
                Alcotest.check answers_t "answers" (Cq.answers_naive t q)
                  (Cq.answers t q);
                Alcotest.check bindings_t "all_bindings"
                  (Cq.all_bindings_naive t q)
                  (Cq.all_bindings t q);
                List.iter
                  (fun (b, _) ->
                    Alcotest.check tv "truth_of_binding"
                      (Cq.truth_of_binding_naive t q b)
                      (Cq.truth_of_binding t q b))
                  (Cq.all_bindings_naive t q))
              (queries_for kb));
        Alcotest.test_case (name ^ ": retrieve matches naive") `Quick
          (fun () ->
            let t = Para.create kb in
            List.iter
              (fun c ->
                Alcotest.check retrieve_t c
                  (Para.retrieve_naive t (Concept.Atom c))
                  (Para.retrieve t (Concept.Atom c)))
              (Kb4.signature kb).Axiom.concepts) ])
    (fixtures ())

(* ------------------------------------------------------------------ *)
(* Pool invariance: answers are byte-identical whatever the pool width. *)

let jobs_tests =
  List.map
    (fun (name, kb) ->
      Alcotest.test_case
        (Printf.sprintf "%s: jobs=1 and jobs=%d agree" name jobs)
        `Quick
        (fun () ->
          let t1 = Para.create ~config:{ Oracle.default_config with Oracle.jobs = 1 } kb in
          let tn = Para.create ~config:{ Oracle.default_config with Oracle.jobs = jobs } kb in
          Alcotest.(check (list (pair string (list string))))
            "classify" (Para.classify t1) (Para.classify tn);
          Alcotest.(check (list (pair (list string) (list string))))
            "taxonomy" (Para.taxonomy t1) (Para.taxonomy tn);
          Alcotest.(check (list (pair string string)))
            "contradictions"
            (Para.contradictions t1)
            (Para.contradictions tn);
          (match (Kb4.signature kb).Axiom.concepts with
          | [] -> ()
          | c :: _ ->
              Alcotest.check retrieve_t "retrieve"
                (Para.retrieve t1 (Concept.Atom c))
                (Para.retrieve tn (Concept.Atom c)));
          List.iter
            (fun q ->
              Alcotest.check answers_t "answers" (Cq.answers t1 q)
                (Cq.answers tn q))
            (queries_for kb)))
    (fixtures ())

(* ------------------------------------------------------------------ *)
(* Oracle batching. *)

let grid_queries kb =
  let s = Kb4.signature kb in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun c ->
          [ Oracle.Instance (a, Concept.Atom c);
            Oracle.Not_instance (a, Concept.Atom c) ])
        s.Axiom.concepts)
    s.Axiom.individuals

let batching_tests =
  [ Alcotest.test_case "check_all agrees with pointwise check" `Quick
      (fun () ->
        List.iter
          (fun (name, kb) ->
            (* duplicate the list so the dedup path is exercised *)
            let queries = grid_queries kb @ grid_queries kb in
            let point =
              let o = Oracle.of_config { Oracle.default_config with Oracle.jobs = 1 } kb in
              List.map (Oracle.check o) queries
            in
            Alcotest.(check (list bool))
              (name ^ " pooled")
              point
              (Oracle.check_all (Oracle.of_config { Oracle.default_config with Oracle.jobs = jobs } kb) queries);
            Alcotest.(check (list bool))
              (name ^ " uncached")
              point
              (Oracle.check_all
                 (Oracle.of_config { Oracle.default_config with Oracle.jobs = jobs; cache_capacity = 0 } kb)
                 queries))
          (fixtures ()));
    Alcotest.test_case "warm Cq.answers repeat pays 0 tableau calls" `Quick
      (fun () ->
        let t = Para.create ~config:{ Oracle.default_config with Oracle.jobs = jobs } clinic_kb in
        let calls () =
          (Engine.stats (Para.engine t)).Engine.tableau_calls
        in
        let qs = queries_for clinic_kb in
        let cold = List.map (Cq.answers t) qs in
        let before = calls () in
        let warm = List.map (Cq.answers t) qs in
        Alcotest.(check int) "no new tableau calls" before (calls ());
        List.iter2 (Alcotest.check answers_t "same answers") cold warm);
    Alcotest.test_case "truth_of_binding short-circuits after f" `Quick
      (fun () ->
        (* dana : ~Surgeon, so the first atom is f and the Doctor atom must
           not be evaluated; with the cache disabled every evaluation pays
           exactly two tableau calls, making the call counts observable *)
        let t = Para.create ~config:{ Oracle.default_config with Oracle.cache_capacity = 0 } clinic_kb in
        let calls () =
          (Engine.stats (Para.engine t)).Engine.tableau_calls
        in
        let q =
          Cq.make ~head:[]
            ~body:
              [ Cq.Concept_atom (Concept.Atom "Surgeon", Cq.Ind "dana");
                Cq.Concept_atom (Concept.Atom "Doctor", Cq.Ind "dana") ]
        in
        let c0 = calls () in
        Alcotest.check tv "value is f" Truth.False (Cq.truth_of_binding t q []);
        Alcotest.(check int) "only the first atom paid" 2 (calls () - c0);
        let c1 = calls () in
        Alcotest.check tv "naive agrees" Truth.False
          (Cq.truth_of_binding_naive t q []);
        Alcotest.(check int) "naive pays both atoms" 4 (calls () - c1));
    Alcotest.test_case "staged enumeration prunes oracle work" `Quick
      (fun () ->
        let q =
          Cq.make ~head:[ "x"; "y" ]
            ~body:
              [ Cq.Concept_atom (Concept.Atom "Surgeon", Cq.Var "x");
                Cq.Role_atom (Role.name "hasPatient", Cq.Var "x", Cq.Var "y")
              ]
        in
        let run f =
          let t = Para.create ~config:{ Oracle.default_config with Oracle.cache_capacity = 0 } clinic_kb in
          let out = f t q in
          (out, (Engine.stats (Para.engine t)).Engine.tableau_calls)
        in
        let staged, staged_calls = run Cq.all_bindings in
        let naive, naive_calls = run Cq.all_bindings_naive in
        Alcotest.check bindings_t "same bindings" naive staged;
        Alcotest.(check bool)
          (Printf.sprintf "staged pays fewer tableau calls (%d < %d)"
             staged_calls naive_calls)
          true (staged_calls < naive_calls)) ]

(* ------------------------------------------------------------------ *)
(* Random KBs: small four-valued KBs over a fixed signature keep the
   tableau fast while still producing contradictions, denials and gaps. *)

let gen_atom = Gen.map (fun a -> Concept.Atom a) (Gen.oneofl [ "A"; "B"; "C" ])
let gen_lit = Gen.oneof [ gen_atom; Gen.map (fun c -> Concept.Not c) gen_atom ]

let gen_concept =
  Gen.oneof
    [ gen_lit;
      Gen.map2 (fun a b -> Concept.And (a, b)) gen_lit gen_lit;
      Gen.map2 (fun a b -> Concept.Or (a, b)) gen_lit gen_lit;
      Gen.map (fun c -> Concept.Exists (Role.name "r", c)) gen_lit ]

let gen_ind = Gen.oneofl [ "a"; "b"; "c" ]

let gen_abox_axiom =
  Gen.oneof
    [ Gen.map2 (fun a c -> Axiom.Instance_of (a, c)) gen_ind gen_concept;
      Gen.map2
        (fun a b -> Axiom.Role_assertion (a, Role.name "r", b))
        gen_ind gen_ind ]

let gen_kb4 =
  let open Gen in
  let* n_tbox = int_bound 2 in
  let* tbox =
    list_repeat n_tbox
      (map2
         (fun c d -> Kb4.Concept_inclusion (Kb4.Internal, c, d))
         gen_concept gen_concept)
  in
  let* n_abox = int_range 1 5 in
  let* abox = list_repeat n_abox gen_abox_axiom in
  return (Kb4.make ~tbox ~abox)

let print_kb = Surface.kb4_to_string

let random_tests =
  [ Test.make ~count:60 ~name:"random KBs: retrieve = retrieve_naive"
      ~print:print_kb gen_kb4
      (fun kb ->
        let t = Para.create kb in
        List.for_all
          (fun c ->
            Para.retrieve t (Concept.Atom c)
            = Para.retrieve_naive t (Concept.Atom c))
          (Kb4.signature kb).Axiom.concepts);
    Test.make ~count:40 ~name:"random KBs: Cq paths match naive"
      ~print:print_kb gen_kb4
      (fun kb ->
        let t = Para.create kb in
        List.for_all
          (fun q ->
            Cq.answers t q = Cq.answers_naive t q
            && Cq.all_bindings t q = Cq.all_bindings_naive t q)
          (queries_for kb));
    Test.make ~count:20 ~name:"random KBs: pool width never changes answers"
      ~print:print_kb gen_kb4
      (fun kb ->
        let t1 = Para.create ~config:{ Oracle.default_config with Oracle.jobs = 1 } kb in
        let tn = Para.create ~config:{ Oracle.default_config with Oracle.jobs = jobs } kb in
        Para.classify t1 = Para.classify tn
        && Para.contradictions t1 = Para.contradictions tn
        && List.for_all
             (fun q -> Cq.answers t1 q = Cq.answers tn q)
             (queries_for kb)) ]

let () =
  Alcotest.run "oracle"
    [ ("guard", guard_tests);
      ("differential", differential_tests);
      ("jobs", jobs_tests);
      ("batching", batching_tests);
      ("random", List.map QCheck_alcotest.to_alcotest random_tests) ]
