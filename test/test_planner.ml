(* Differential suite for the cost-based CQ planner: under every atom
   order and join strategy, [Cq.run]'s output must be byte-identical to
   the [answers_naive] / [answers_staged] references — on the paper
   examples, the shipped KBs, random in/out-of-fragment KBs and with a
   parallel oracle pool.  Also: parser round-trips, plan JSON
   well-formedness (cross-checked with the independent Json_lite
   reader), and the adaptivity fallback (a deliberately mis-estimated
   plan stays correct). *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let kb_dir = Filename.concat (Filename.concat ".." "examples") "kb"

let load_example name =
  Surface.parse_kb4_exn (read (Filename.concat kb_dir name))

let answers_t =
  Alcotest.(list (pair (list string) (testable Truth.pp Truth.equal)))

let bindings_t =
  Alcotest.(
    list
      (pair
         (list (pair string string))
         (testable Truth.pp Truth.equal)))

(* every execution regime a plan can run under *)
let regimes =
  [ ("cost/adaptive", `Cost, None, None);
    ("cost/nested", `Cost, Some Cq.Plan.Nested_loop, None);
    ("cost/hash", `Cost, Some Cq.Plan.Hash_join, None);
    ("cost/threshold0", `Cost, None, Some 0);
    ("syntactic/adaptive", `Syntactic, None, None);
    ("syntactic/nested", `Syntactic, Some Cq.Plan.Nested_loop, None);
    ("syntactic/hash", `Syntactic, Some Cq.Plan.Hash_join, None) ]

let check_differential ?(jobs = 1) name kb queries =
  let config = { Session.default_config with Session.jobs } in
  let para = Para.create ~config kb in
  List.iter
    (fun q ->
      let expected = Cq.answers_naive para q in
      let expected_bindings = Cq.all_bindings_naive para q in
      Alcotest.check answers_t
        (name ^ "/staged answers")
        expected
        (Cq.answers_staged para q);
      List.iter
        (fun (regime, order, force, threshold) ->
          let plan = Cq.compile ?threshold ?force ~order para q in
          Alcotest.check answers_t
            (name ^ "/" ^ regime ^ " answers")
            expected (Cq.run plan);
          let plan' = Cq.compile ?threshold ?force ~order para q in
          Alcotest.check bindings_t
            (name ^ "/" ^ regime ^ " bindings")
            expected_bindings (Cq.run_bindings plan'))
        regimes)
    queries

(* queries touching every shape: single atom, star join, chain with a
   constant, filter atom over a bound pair, boolean (empty head) *)
let queries_over kb =
  let signature = Kb4.signature kb in
  let concepts =
    List.sort_uniq String.compare signature.Axiom.concepts
  in
  let roles = List.sort_uniq String.compare signature.Axiom.roles in
  let inds = signature.Axiom.individuals in
  let c i = Concept.Atom (List.nth concepts (i mod List.length concepts)) in
  let r i = Role.name (List.nth roles (i mod List.length roles)) in
  if concepts = [] || inds = [] then []
  else
    Cq.make ~head:[ "x" ] ~body:[ Cq.Concept_atom (c 0, Cq.Var "x") ]
    :: Cq.make ~head:[]
         ~body:[ Cq.Concept_atom (c 0, Cq.Ind (List.hd inds)) ]
    :: (if roles = [] then []
        else
          [ Cq.make ~head:[ "x"; "y" ]
              ~body:
                [ Cq.Concept_atom (c 0, Cq.Var "x");
                  Cq.Role_atom (r 0, Cq.Var "x", Cq.Var "y") ];
            Cq.make ~head:[ "y" ]
              ~body:
                [ Cq.Role_atom (r 0, Cq.Ind (List.hd inds), Cq.Var "y");
                  Cq.Concept_atom (c 1, Cq.Var "y") ];
            Cq.make ~head:[ "x" ]
              ~body:
                [ Cq.Concept_atom (c 0, Cq.Var "x");
                  Cq.Role_atom (r 0, Cq.Var "x", Cq.Var "y");
                  Cq.Concept_atom (c 1, Cq.Var "y");
                  Cq.Role_atom (r 0, Cq.Var "x", Cq.Var "x") ] ])

let paper_tests =
  List.map
    (fun (name, kb) ->
      Alcotest.test_case name `Quick (fun () ->
          check_differential name kb (queries_over kb)))
    [ ("example1", Paper_examples.example1);
      ("example2", Paper_examples.example2);
      ("example3", Paper_examples.example3);
      ("example4", Paper_examples.example4) ]

let shipped_tests =
  List.map
    (fun file ->
      Alcotest.test_case file `Quick (fun () ->
          let kb = load_example file in
          check_differential file kb (queries_over kb)))
    [ "example1.dl4"; "access_control.dl4"; "tweety.dl4" ]

let jobs_tests =
  [ Alcotest.test_case "parallel pool (jobs=2)" `Quick (fun () ->
        check_differential ~jobs:2 "example1/j2" Paper_examples.example1
          (queries_over Paper_examples.example1)) ]

(* random KBs: in-fragment (no negation — Horn/EL eligible) and
   out-of-fragment (negation + injected contradictions) *)
let random_kb ~seed ~allow_negation =
  let kb =
    Gen.kb4
      { Gen.default with
        Gen.seed;
        n_concepts = 4;
        n_roles = 2;
        n_individuals = 5;
        n_tbox = 5;
        n_abox = 10;
        max_depth = 2;
        inconsistency_rate = (if allow_negation then 0.3 else 0.0);
        allow_negation }
  in
  if allow_negation then Gen.inject_contradictions ~seed ~count:2 kb else kb

let random_tests =
  List.concat_map
    (fun seed ->
      [ Alcotest.test_case
          (Printf.sprintf "random in-fragment (seed %d)" seed)
          `Quick
          (fun () ->
            let kb = random_kb ~seed ~allow_negation:false in
            check_differential "in-fragment" kb (queries_over kb));
        Alcotest.test_case
          (Printf.sprintf "random out-of-fragment (seed %d)" seed)
          `Quick
          (fun () ->
            let kb = random_kb ~seed ~allow_negation:true in
            check_differential "out-of-fragment" kb (queries_over kb)) ])
    [ 7; 42 ]

(* A deliberately mis-estimated plan: syntactic order puts the huge atom
   first, and a zero threshold mis-routes even one-row binding sets into
   hash joins.  Adaptivity must keep the answers identical anyway. *)
let adaptivity_tests =
  [ Alcotest.test_case "mis-estimated plan stays correct" `Quick (fun () ->
        let kb = Paper_examples.example1 in
        let para = Para.create kb in
        let q =
          Cq.make ~head:[ "x"; "y" ]
            ~body:
              [ Cq.Role_atom (Role.name "hasPatient", Cq.Var "x", Cq.Var "y");
                Cq.Concept_atom (Concept.Atom "Patient", Cq.Var "y") ]
        in
        let expected = Cq.answers_naive para q in
        List.iter
          (fun force ->
            let plan =
              Cq.compile ~order:`Syntactic ~threshold:0 ?force para q
            in
            Alcotest.check answers_t "mis-estimated answers" expected
              (Cq.run plan))
          [ None; Some Cq.Plan.Nested_loop; Some Cq.Plan.Hash_join ]);
    Alcotest.test_case "strategy counts reflect execution" `Quick (fun () ->
        let para = Para.create Paper_examples.example1 in
        let q =
          Cq.make ~head:[ "x" ]
            ~body:[ Cq.Concept_atom (Concept.Atom "Doctor", Cq.Var "x") ]
        in
        let plan = Cq.compile ~force:Cq.Plan.Hash_join para q in
        Alcotest.(check (list (pair string int)))
          "not executed yet" [] (Cq.strategy_counts plan);
        ignore (Cq.run plan);
        Alcotest.(check (list (pair string int)))
          "one hash-join pick"
          [ ("hash_join", 1) ]
          (Cq.strategy_counts plan)) ]

let parse_tests =
  [ Alcotest.test_case "parse with head" `Quick (fun () ->
        match Cq.parse "?x, ?y <- Doctor(?x), hasPatient(?x, ?y)" with
        | Error e -> Alcotest.fail e
        | Ok q ->
            Alcotest.(check (list string)) "head" [ "x"; "y" ] q.Cq.head;
            Alcotest.(check int) "atoms" 2 (List.length q.Cq.body));
    Alcotest.test_case "parse without head projects all vars sorted" `Quick
      (fun () ->
        match Cq.parse "Doctor(?b), hasPatient(?b, ?a)" with
        | Error e -> Alcotest.fail e
        | Ok q -> Alcotest.(check (list string)) "head" [ "a"; "b" ] q.Cq.head);
    Alcotest.test_case "parse constants, inverse roles, complex concepts"
      `Quick (fun () ->
        match
          Cq.parse "?x <- (Doctor & ~Surgeon)(?x), hasPatient^-(mary, ?x)"
        with
        | Error e -> Alcotest.fail e
        | Ok q -> (
            match q.Cq.body with
            | [ Cq.Concept_atom (Concept.And _, Cq.Var "x");
                Cq.Role_atom (Role.Inv "hasPatient", Cq.Ind "mary", Cq.Var "x")
              ] ->
                ()
            | _ -> Alcotest.fail "unexpected parse"));
    Alcotest.test_case "to_string round-trips" `Quick (fun () ->
        let src = "?x, ?y <- Doctor(?x), hasPatient(?x, ?y), Patient(?y)" in
        match Cq.parse src with
        | Error e -> Alcotest.fail e
        | Ok q -> (
            match Cq.parse (Cq.to_string q) with
            | Error e -> Alcotest.fail e
            | Ok q' ->
                Alcotest.(check string)
                  "round-trip" (Cq.to_string q) (Cq.to_string q')));
    Alcotest.test_case "head variable not in body is rejected" `Quick
      (fun () ->
        match Cq.parse "?z <- Doctor(?x)" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "malformed atoms are rejected" `Quick (fun () ->
        List.iter
          (fun src ->
            match Cq.parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail ("expected error for " ^ src))
          [ ""; "Doctor"; "Doctor()"; "r(?x, ?y, ?z)"; "?x <-" ]) ]

let json_tests =
  [ Alcotest.test_case "plan JSON parses and carries the schema" `Quick
      (fun () ->
        let para = Para.create Paper_examples.example1 in
        let q =
          Cq.make ~head:[ "x"; "y" ]
            ~body:
              [ Cq.Concept_atom (Concept.Atom "Doctor", Cq.Var "x");
                Cq.Role_atom (Role.name "hasPatient", Cq.Var "x", Cq.Var "y")
              ]
        in
        let plan = Cq.compile para q in
        let check_json ~executed js =
          match Json_lite.parse js with
          | Error msg -> Alcotest.fail ("unparsable plan JSON: " ^ msg)
          | Ok j ->
              Alcotest.(check (option string))
                "schema" (Some "dl4-plan/1")
                (Option.bind (Json_lite.member "schema" j) Json_lite.to_str);
              Alcotest.(check (option bool))
                "executed" (Some executed)
                (match Json_lite.member "executed" j with
                | Some (Json_lite.Bool b) -> Some b
                | _ -> None);
              Alcotest.(check (option int))
                "steps" (Some 2)
                (Option.map List.length
                   (Option.bind (Json_lite.member "steps" j) Json_lite.to_list))
        in
        check_json ~executed:false (Cq.explain_json plan);
        ignore (Cq.run plan);
        check_json ~executed:true (Cq.explain_json plan));
    Alcotest.test_case "explain is stable across compiles" `Quick (fun () ->
        let para = Para.create Paper_examples.example1 in
        let q =
          Cq.make ~head:[ "x" ]
            ~body:[ Cq.Concept_atom (Concept.Atom "Doctor", Cq.Var "x") ]
        in
        Alcotest.(check string)
          "same plan JSON"
          (Cq.explain_json (Cq.compile para q))
          (Cq.explain_json (Cq.compile para q))) ]

(* property: planner ≡ naive on random small KBs and a random 2-atom query *)
let prop_planner_matches_naive =
  QCheck.Test.make ~count:20 ~name:"planner matches naive on random KBs"
    QCheck.(make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let kb = random_kb ~seed ~allow_negation:(seed mod 2 = 0) in
      let para = Para.create kb in
      List.for_all
        (fun q ->
          let expected = Cq.answers_naive para q in
          List.for_all
            (fun (_, order, force, threshold) ->
              Cq.run (Cq.compile ?threshold ?force ~order para q) = expected)
            regimes)
        (queries_over kb))

let () =
  Alcotest.run "planner"
    [ ("paper-examples", paper_tests);
      ("shipped-kbs", shipped_tests);
      ("jobs", jobs_tests);
      ("random-kbs", random_tests);
      ("adaptivity", adaptivity_tests);
      ("parse", parse_tests);
      ("plan-json", json_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_planner_matches_naive ])
    ]
