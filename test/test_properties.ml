(* Property-based tests (qcheck): NNF laws, Proposition 4 as a law of the
   four-valued semantics, Lemma 5 (decomposition) and the per-axiom version
   of Theorem 6 on random interpretations, parser round trips, and
   differential testing of the tableau against model enumeration. *)

open QCheck2

(* ------------------------------------------------------------------ *)
(* Generators *)

let concept_names = [ "A"; "B"; "C" ]
let role_names = [ "r"; "s" ]
let individual_names = [ "x"; "y" ]

let gen_atom = Gen.map (fun a -> Concept.Atom a) (Gen.oneofl concept_names)
let gen_role =
  Gen.map2
    (fun name inv -> if inv then Role.Inv name else Role.Name name)
    (Gen.oneofl role_names) Gen.bool

(* Random concept with bounded depth.  [nominals] controls whether One_of
   may appear (the transformation has a documented gap for negated
   nominals, see Transform). *)
let gen_concept ?(nominals = true) () =
  let open Gen in
  sized_size (int_bound 3) @@ fix (fun self n ->
      if n = 0 then
        oneof
          ([ gen_atom;
             map (fun a -> Concept.Not a) gen_atom;
             return Concept.Top;
             return Concept.Bottom ]
          @
          if nominals then
            [ map (fun os -> Concept.One_of os)
                (map (fun o -> [ o ]) (oneofl individual_names)) ]
          else [])
      else
        oneof
          [ gen_atom;
            map2 (fun a b -> Concept.And (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Concept.Or (a, b)) (self (n - 1)) (self (n - 1));
            map (fun a -> Concept.Not a) (self (n - 1));
            map2 (fun r c -> Concept.Exists (r, c)) gen_role (self (n - 1));
            map2 (fun r c -> Concept.Forall (r, c)) gen_role (self (n - 1));
            map2 (fun k r -> Concept.At_least (k, r)) (int_bound 2) gen_role;
            map2 (fun k r -> Concept.At_most (k, r)) (int_bound 2) gen_role ])

let print_concept = Concept.to_string

(* Positive-NNF-ish concepts for the decomposition property: negation is
   applied freely but One_of never occurs under Not.  We reuse the general
   generator without nominals (nominals appear in a dedicated positive-only
   test). *)
let gen_concept_no_nominal = gen_concept ~nominals:false ()

(* Random two-valued interpretation over domain {0..size-1}. *)
let gen_interp2 size =
  let open Gen in
  let elements = List.init size Fun.id in
  let pairs = List.concat_map (fun x -> List.map (fun y -> (x, y)) elements) elements in
  let subset xs = map (fun keep -> List.filteri (fun i _ -> List.nth keep i) xs)
      (list_repeat (List.length xs) bool)
  in
  let* concepts =
    flatten_l
      (List.map (fun a -> map (fun s -> (a, s)) (subset elements)) concept_names)
  in
  let* roles =
    flatten_l (List.map (fun r -> map (fun s -> (r, s)) (subset pairs)) role_names)
  in
  return
    (Interp.make
       ~domain:(Interp.ESet.of_list elements)
       ~concepts ~roles
       ~individuals:(List.mapi (fun i a -> (a, i mod size)) individual_names)
       ())

(* Random four-valued interpretation. *)
let gen_interp4 size =
  let open Gen in
  let elements = List.init size Fun.id in
  let pairs = List.concat_map (fun x -> List.map (fun y -> (x, y)) elements) elements in
  let subset xs = map (fun keep -> List.filteri (fun i _ -> List.nth keep i) xs)
      (list_repeat (List.length xs) bool)
  in
  let* concepts =
    flatten_l
      (List.map
         (fun a -> map2 (fun p n -> (a, p, n)) (subset elements) (subset elements))
         concept_names)
  in
  let* roles =
    flatten_l
      (List.map
         (fun r -> map2 (fun p n -> (r, p, n)) (subset pairs) (subset pairs))
         role_names)
  in
  return
    (Interp4.make
       ~domain:(Interp.ESet.of_list elements)
       ~concepts ~roles
       ~individuals:(List.mapi (fun i a -> (a, i mod size)) individual_names)
       ())

let cext_equal (a : Interp4.cext) (b : Interp4.cext) =
  Interp.ESet.equal a.Interp4.cpos b.Interp4.cpos
  && Interp.ESet.equal a.Interp4.cneg b.Interp4.cneg

(* ------------------------------------------------------------------ *)
(* NNF properties *)

let nnf_tests =
  [ Test.make ~count:500 ~name:"nnf produces NNF" ~print:print_concept
      (gen_concept ()) (fun c -> Concept.is_nnf (Concept.nnf c));
    Test.make ~count:500 ~name:"nnf is idempotent" ~print:print_concept
      (gen_concept ()) (fun c ->
        Concept.equal (Concept.nnf c) (Concept.nnf (Concept.nnf c)));
    Test.make ~count:300 ~name:"nnf preserves two-valued semantics"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair (gen_concept ()) (gen_interp2 3))
      (fun (c, i) ->
        Interp.ESet.equal (Interp.eval i c) (Interp.eval i (Concept.nnf c)));
    Test.make ~count:300
      ~name:"nnf preserves four-valued semantics (Proposition 4 as a law)"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair (gen_concept ()) (gen_interp4 3))
      (fun (c, i) -> cext_equal (Interp4.eval i c) (Interp4.eval i (Concept.nnf c)));
    Test.make ~count:300 ~name:"double negation four-valued"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair (gen_concept ()) (gen_interp4 2))
      (fun (c, i) ->
        cext_equal (Interp4.eval i (Concept.Not (Concept.Not c))) (Interp4.eval i c));
    Test.make ~count:500 ~name:"size of nnf is linear (within 2x + 1)"
      ~print:print_concept (gen_concept ()) (fun c ->
        Concept.size (Concept.nnf c) <= (2 * Concept.size c) + 1)
  ]

(* ------------------------------------------------------------------ *)
(* The classical corner: embedding a two-valued interpretation yields
   classical truth values agreeing with Table 1 evaluation. *)

let classical_corner_tests =
  [ Test.make ~count:300
      ~name:"four-valued semantics extends the classical (§3.2)"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair gen_concept_no_nominal (gen_interp2 3))
      (fun (c, i) ->
        let i4 = Interp4.of_classical i in
        let two = Interp.eval i c in
        let four = Interp4.eval i4 c in
        Interp.ESet.equal two four.Interp4.cpos
        && Interp.ESet.equal
             (Interp.ESet.diff i.Interp.domain two)
             four.Interp4.cneg);
    (* Nominals: Table 2 leaves the negative part of {o…} unconstrained and
       our checker uses the canonical N = ∅, so only the positive
       projection is classical. *)
    Test.make ~count:300
      ~name:"classical corner, positive projection (with nominals)"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair (gen_concept ()) (gen_interp2 3))
      (fun (c, i) ->
        let i4 = Interp4.of_classical i in
        (* compare told-true only, and only for negation-free concepts *)
        let rec negation_free (c : Concept.t) =
          match c with
          | Not _ -> false
          | And (a, b) | Or (a, b) -> negation_free a && negation_free b
          | Exists (_, d) | Forall (_, d) -> negation_free d
          | _ -> true
        in
        (not (negation_free c))
        || Interp.ESet.equal (Interp.eval i c) (Interp4.eval i4 c).Interp4.cpos)
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 5: decomposition of the four-valued semantics. *)

let decomposition_tests =
  [ Test.make ~count:500
      ~name:"Lemma 5: proj+/proj- = transformed evaluation (no nominals)"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(pair gen_concept_no_nominal (gen_interp4 3))
      (fun (c, i) ->
        let ibar = Induced.classical_of_four i in
        let e = Interp4.eval i c in
        Interp.ESet.equal e.Interp4.cpos
          (Interp.eval ibar (Transform.concept_pos c))
        && Interp.ESet.equal e.Interp4.cneg
             (Interp.eval ibar (Transform.concept_neg c)));
    Test.make ~count:300
      ~name:"Lemma 5 positive part also holds with positive nominals"
      ~print:(fun (c, _) -> print_concept c)
      Gen.(
        pair
          (map2
             (fun os c -> Concept.And (Concept.One_of os, c))
             (map (fun o -> [ o ]) (oneofl individual_names))
             gen_concept_no_nominal)
          (gen_interp4 2))
      (fun (c, i) ->
        let ibar = Induced.classical_of_four i in
        Interp.ESet.equal
          (Interp4.eval i c).Interp4.cpos
          (Interp.eval ibar (Transform.concept_pos c)))
  ]

(* ------------------------------------------------------------------ *)
(* Theorem 6, per axiom: I ⊨₄ ax  iff  Ī ⊨ transform(ax). *)

let gen_inclusion = Gen.oneofl [ Kb4.Material; Kb4.Internal; Kb4.Strong ]

let gen_tbox4_axiom =
  let open Gen in
  oneof
    [ map3
        (fun k c d -> Kb4.Concept_inclusion (k, c, d))
        gen_inclusion gen_concept_no_nominal gen_concept_no_nominal;
      map3 (fun k r s -> Kb4.Role_inclusion (k, r, s)) gen_inclusion gen_role gen_role ]

let gen_abox_axiom =
  let open Gen in
  oneof
    [ map2
        (fun a c -> Axiom.Instance_of (a, c))
        (oneofl individual_names) gen_concept_no_nominal;
      map3
        (fun a r b -> Axiom.Role_assertion (a, r, b))
        (oneofl individual_names) gen_role (oneofl individual_names) ]

let theorem6_tests =
  [ Test.make ~count:500 ~name:"Theorem 6 per TBox axiom"
      ~print:(fun (ax, _) -> Format.asprintf "%a" Kb4.pp_tbox_axiom ax)
      Gen.(pair gen_tbox4_axiom (gen_interp4 2))
      (fun (ax, i) ->
        let ibar = Induced.classical_of_four i in
        let holds4 = Interp4.satisfies_tbox i ax in
        let holds2 =
          List.for_all (Interp.satisfies_tbox ibar) (Transform.tbox_axiom ax)
        in
        Bool.equal holds4 holds2);
    Test.make ~count:500 ~name:"Theorem 6 per ABox axiom"
      ~print:(fun (ax, _) -> Format.asprintf "%a" Axiom.pp_abox_axiom ax)
      Gen.(pair gen_abox_axiom (gen_interp4 2))
      (fun (ax, i) ->
        let ibar = Induced.classical_of_four i in
        Bool.equal
          (Interp4.satisfies_abox i ax)
          (Interp.satisfies_abox ibar (Transform.abox_axiom ax)));
    Test.make ~count:200 ~name:"induced interpretations are mutually inverse"
      (gen_interp4 3)
      (fun i ->
        let signature =
          { Axiom.concepts = concept_names;
            roles = role_names;
            data_roles = [];
            individuals = individual_names }
        in
        let back =
          Induced.four_of_classical ~signature (Induced.classical_of_four i)
        in
        List.for_all
          (fun a ->
            cext_equal (Interp4.concept_ext i a) (Interp4.concept_ext back a))
          concept_names
        && List.for_all
             (fun r ->
               let e = Interp4.role_ext i (Role.Name r)
               and e' = Interp4.role_ext back (Role.Name r) in
               Interp.PSet.equal e.Interp4.rpos e'.Interp4.rpos
               && Interp.PSet.equal e.Interp4.rneg e'.Interp4.rneg)
             role_names)
  ]

(* ------------------------------------------------------------------ *)
(* Parser round trip *)

let parser_tests =
  [ Test.make ~count:500 ~name:"concept print/parse round trip"
      ~print:print_concept (gen_concept ()) (fun c ->
        match Surface.parse_concept (Concept.to_string c) with
        | Ok c' -> Concept.equal c c'
        | Error _ -> false);
    Test.make ~count:100 ~name:"kb4 print/parse round trip"
      ~print:(fun axs ->
        Surface.kb4_to_string (Kb4.make ~tbox:axs ~abox:[]))
      Gen.(list_size (int_range 1 8) gen_tbox4_axiom)
      (fun axs ->
        let kb = Kb4.make ~tbox:axs ~abox:[] in
        match Surface.parse_kb4 (Surface.kb4_to_string kb) with
        | Ok kb' ->
            List.length kb.Kb4.tbox = List.length kb'.Kb4.tbox
            && List.for_all2
                 (fun a b -> Kb4.compare_tbox_axiom a b = 0)
                 kb.Kb4.tbox kb'.Kb4.tbox
        | Error _ -> false)
  ]

(* ------------------------------------------------------------------ *)
(* Differential testing of the tableau *)

(* Propositional KBs (no roles): the tableau and enumeration over the
   individuals' domain must agree exactly. *)
let gen_prop_concept =
  let open Gen in
  sized_size (int_bound 3) @@ fix (fun self n ->
      if n = 0 then oneof [ gen_atom; map (fun a -> Concept.Not a) gen_atom ]
      else
        oneof
          [ gen_atom;
            map2 (fun a b -> Concept.And (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Concept.Or (a, b)) (self (n - 1)) (self (n - 1));
            map (fun a -> Concept.Not a) (self (n - 1)) ])

let gen_prop_kb =
  let open Gen in
  let* n_tbox = int_bound 2 in
  let* tbox =
    list_repeat n_tbox
      (map2 (fun c d -> Axiom.Concept_sub (c, d)) gen_prop_concept gen_prop_concept)
  in
  let* n_abox = int_range 1 4 in
  let* abox =
    list_repeat n_abox
      (map2
         (fun a c -> Axiom.Instance_of (a, c))
         (oneofl individual_names) gen_prop_concept)
  in
  return (Axiom.make ~tbox ~abox)

let gen_shallow_kb =
  let open Gen in
  let* n_abox = int_range 1 5 in
  let* abox =
    list_repeat n_abox
      (oneof
         [ map2
             (fun a c -> Axiom.Instance_of (a, c))
             (oneofl individual_names)
             (gen_concept ~nominals:false ());
           map3
             (fun a r b -> Axiom.Role_assertion (a, r, b))
             (oneofl individual_names) gen_role (oneofl individual_names) ])
  in
  return (Axiom.make ~tbox:[] ~abox)

let print_kb = Surface.kb_to_string

(* Bounded model search: scan at most [budget] interpretations.  The
   enumeration spaces blow up fast, so the two-sided differential test is
   restricted to propositional KBs (tiny spaces); elsewhere we use the
   one-sided "a found model implies tableau-sat" direction with a budget. *)
let find_model2_bounded ~budget ~extra kb =
  let signature = Axiom.signature kb in
  Seq.exists
    (fun i -> Interp.is_model i kb)
    (Seq.take budget (Enum.interps2 ~signature ~extra ()))

let find_model4_bounded ~budget kb =
  let signature = Kb4.signature kb in
  Seq.exists
    (fun i -> Interp4.is_model i kb)
    (Seq.take budget (Enum.interps4 ~signature ()))

let differential_tests =
  [ Test.make ~count:300
      ~name:"propositional KBs: tableau agrees with enumeration exactly"
      ~print:print_kb gen_prop_kb
      (fun kb ->
        Bool.equal (Tableau.kb_satisfiable kb) (Enum.exists_model2 kb));
    Test.make ~count:100
      ~name:"shallow KBs: an enumerated model implies tableau-sat"
      ~print:print_kb gen_shallow_kb
      (fun kb ->
        (* one-sided: finite enumeration under-approximates satisfiability *)
        if find_model2_bounded ~budget:30_000 ~extra:0 kb then
          Tableau.kb_satisfiable kb
        else true);
    Test.make ~count:100
      ~name:"4-valued: enumerated 4-model implies transformed KB sat"
      ~print:(fun kb -> Surface.kb4_to_string kb)
      Gen.(
        let* n = int_range 1 4 in
        let* abox = list_repeat n gen_abox_axiom in
        let* n_tbox = int_bound 2 in
        let* tbox = list_repeat n_tbox gen_tbox4_axiom in
        return (Kb4.make ~tbox ~abox))
      (fun kb ->
        if find_model4_bounded ~budget:30_000 kb then
          Tableau.kb_satisfiable (Transform.kb kb)
        else true);
    (* Model extraction: [kb_model] self-verifies, so [Some] is always a
       real model; on fragments with the finite-tree/finite-model property
       extraction must succeed whenever the KB is satisfiable. *)
    Test.make ~count:200
      ~name:"propositional KBs: satisfiable implies extractable model"
      ~print:print_kb gen_prop_kb
      (fun kb ->
        if Tableau.kb_satisfiable kb then Tableau.kb_model kb <> None else true);
    Test.make ~count:100
      ~name:"ABox-only KBs: satisfiable implies extractable model"
      ~print:print_kb gen_shallow_kb
      (fun kb ->
        if Tableau.kb_satisfiable kb then Tableau.kb_model kb <> None else true)
  ]

(* ------------------------------------------------------------------ *)
(* Baseline invariants *)

let baseline_tests =
  [ Test.make ~count:50 ~name:"stratified repair is always consistent"
      ~print:print_kb gen_prop_kb
      (fun kb -> Tableau.kb_satisfiable (Baselines.stratified_repair kb));
    Test.make ~count:50 ~name:"selection subset is consistent and within KB"
      ~print:print_kb gen_prop_kb
      (fun kb ->
        let sub = Baselines.selection_subset kb (Concept.Atom "A") "x" in
        Tableau.kb_satisfiable sub && Axiom.size sub <= Axiom.size kb)
  ]

(* ------------------------------------------------------------------ *)
(* Native four-valued tableau vs the transformation pipeline: both decide
   the same relation (Theorem 6), via entirely different code paths. *)

let gen_kb4_for_native =
  let open Gen in
  let* n_tbox = int_bound 3 in
  let* tbox =
    list_repeat n_tbox
      (map3
         (fun k c d -> Kb4.Concept_inclusion (k, c, d))
         gen_inclusion gen_concept_no_nominal gen_concept_no_nominal)
  in
  let* n_abox = int_range 1 4 in
  let* abox = list_repeat n_abox gen_abox_axiom in
  return (Kb4.make ~tbox ~abox)

(* Chronological backtracking is worst-case exponential, so pathological
   random KBs are skipped via a branch budget rather than hanging the
   suite. *)
let with_budget f = match f () with v -> Some v | exception Tableau.Resource_limit _ -> None

let native_tests =
  [ Test.make ~count:80
      ~name:"native 4-valued tableau agrees with the transformation (sat)"
      ~print:(fun kb -> Surface.kb4_to_string kb)
      gen_kb4_for_native
      (fun kb ->
        let p =
          with_budget (fun () ->
              Para.satisfiable (Para.create ~config:{ Oracle.default_config with Oracle.max_nodes = 1_000; max_branches = 1_500 } kb))
        in
        let n =
          with_budget (fun () ->
              Tableau4.satisfiable (Tableau4.create ~max_nodes:1_000 ~max_branches:1_500 kb))
        in
        match (p, n) with
        | Some p, Some n -> Bool.equal p n
        | None, _ | _, None -> true (* budget blown: skip *));
    Test.make ~count:30
      ~name:"native 4-valued tableau agrees on instance truth values"
      ~print:(fun kb -> Surface.kb4_to_string kb)
      gen_kb4_for_native
      (fun kb ->
        let para = Para.create ~config:{ Oracle.default_config with Oracle.max_nodes = 1_000; max_branches = 1_500 } kb in
        let native = Tableau4.create ~max_nodes:1_000 ~max_branches:1_500 kb in
        List.for_all
          (fun a ->
            List.for_all
              (fun cname ->
                let c = Concept.Atom cname in
                match
                  ( with_budget (fun () -> Para.instance_truth para a c),
                    with_budget (fun () -> Tableau4.instance_truth native a c) )
                with
                | Some vp, Some vn -> Truth.equal vp vn
                | None, _ | _, None -> true)
              concept_names)
          individual_names)
  ]

(* ------------------------------------------------------------------ *)
(* Propositional four-valued logic: tableau vs enumeration *)

let gen_formula =
  let open Gen in
  let gen_patom = map Prop4.atom (oneofl [ "p"; "q"; "r" ]) in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n = 0 then gen_patom
      else
        oneof
          [ gen_patom;
            map Prop4.neg (self (n - 1));
            map2 (fun a b -> Prop4.And (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Prop4.Or (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Prop4.Material (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Prop4.Internal (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Prop4.Strong (a, b)) (self (n - 1)) (self (n - 1));
            map2 (fun a b -> Prop4.Equiv (a, b)) (self (n - 1)) (self (n - 1)) ])

let prop4_tests =
  [ Test.make ~count:500
      ~name:"signed tableau agrees with valuation enumeration"
      ~print:(fun (gamma, phi) ->
        Format.asprintf "%a |- %a"
          (Format.pp_print_list Prop4.pp)
          gamma Prop4.pp phi)
      Gen.(pair (list_size (int_bound 3) gen_formula) gen_formula)
      (fun (gamma, phi) ->
        Bool.equal (Prop4.entails gamma phi) (Prop4_tableau.entails gamma phi));
    Test.make ~count:300 ~name:"four-valued entailment implies classical"
      ~print:(fun (gamma, phi) ->
        Format.asprintf "%a |- %a"
          (Format.pp_print_list Prop4.pp)
          gamma Prop4.pp phi)
      Gen.(pair (list_size (int_bound 3) gen_formula) gen_formula)
      (fun (gamma, phi) ->
        (* ⊨⁴ is strictly weaker than classical entailment *)
        (not (Prop4.entails gamma phi)) || Prop4.entails_classically gamma phi)
  ]

(* ------------------------------------------------------------------ *)
(* Datatype solver properties *)

let gen_datatype =
  let open Gen in
  sized_size (int_bound 2) @@ fix (fun self n ->
      let base =
        oneof
          [ return Datatype.Int_type;
            return Datatype.String_type;
            return Datatype.Bool_type;
            return Datatype.Top_data;
            return Datatype.Bottom_data;
            map2
              (fun lo len -> Datatype.Int_range (Some lo, Some (lo + len)))
              (int_range (-20) 20) (int_bound 20);
            map
              (fun vs -> Datatype.One_of vs)
              (list_size (int_range 1 3)
                 (oneof
                    [ map (fun n -> Datatype.Int n) (int_range (-5) 5);
                      map (fun b -> Datatype.Bool b) bool;
                      oneofl [ Datatype.Str "a"; Datatype.Str "b" ] ])) ]
      in
      if n = 0 then base
      else oneof [ base; map (fun d -> Datatype.Complement d) (self (n - 1)) ])

let gen_value =
  Gen.oneof
    [ Gen.map (fun n -> Datatype.Int n) (Gen.int_range (-25) 25);
      Gen.map (fun b -> Datatype.Bool b) Gen.bool;
      Gen.oneofl [ Datatype.Str "a"; Datatype.Str "b"; Datatype.Str "zz" ] ]

let datatype_tests =
  [ Test.make ~count:500 ~name:"complement flips membership"
      ~print:(fun (v, d) ->
        Format.asprintf "%a in %a" Datatype.pp_value v Datatype.pp d)
      Gen.(pair gen_value gen_datatype)
      (fun (v, d) ->
        Bool.equal (Datatype.member v (Datatype.Complement d))
          (not (Datatype.member v d)));
    Test.make ~count:300 ~name:"witnesses are members"
      ~print:(fun ds -> String.concat "; " (List.map Datatype.to_string ds))
      Gen.(list_size (int_range 1 3) gen_datatype)
      (fun ds ->
        List.for_all
          (fun w -> List.for_all (Datatype.member w) ds)
          (Datatype.witnesses 4 ds));
    Test.make ~count:300 ~name:"satisfiable iff a witness exists"
      ~print:(fun ds -> String.concat "; " (List.map Datatype.to_string ds))
      Gen.(list_size (int_range 1 3) gen_datatype)
      (fun ds ->
        Bool.equal (Datatype.satisfiable ds) (Datatype.witnesses 1 ds <> []));
    Test.make ~count:300 ~name:"cardinality is monotone"
      ~print:(fun ds -> String.concat "; " (List.map Datatype.to_string ds))
      Gen.(list_size (int_range 1 3) gen_datatype)
      (fun ds ->
        let ok_at n = Datatype.cardinal_at_least n ds in
        (not (ok_at 3)) || (ok_at 2 && ok_at 1))
  ]

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [ ("nnf", to_alcotest nnf_tests);
      ("classical-corner", to_alcotest classical_corner_tests);
      ("decomposition", to_alcotest decomposition_tests);
      ("theorem6", to_alcotest theorem6_tests);
      ("parser", to_alcotest parser_tests);
      ("differential", to_alcotest differential_tests);
      ("native4", to_alcotest native_tests);
      ("prop4", to_alcotest prop4_tests);
      ("baselines", to_alcotest baseline_tests);
      ("datatype", to_alcotest datatype_tests) ]
