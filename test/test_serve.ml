(* dl4 serve: the NDJSON protocol, in-process and over a real socket.

   [Serve.handle] is the whole protocol (the socket loop only shuttles
   bytes), so most cases drive it directly; one case forks an actual
   daemon on a scratch socket and talks to it through [Serve.request],
   which is what `dl4 client` and the CI smoke test use. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Response parsing (Json_lite is an independent reader, so these tests
   double as well-formedness checks on the hand-rendered output) *)

let parse_resp line =
  match Json_lite.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e line

let mem name j =
  match Json_lite.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks field %S" name

let str name j =
  Option.value ~default:"" (Json_lite.to_str (mem name j))

let int_field name j =
  int_of_float (Option.value ~default:Float.nan (Json_lite.to_num (mem name j)))

let ok j =
  match mem "ok" j with
  | Json_lite.Bool b -> b
  | _ -> Alcotest.fail "ok is not a boolean"

let cost_tableau_calls j = int_field "tableau_calls" (mem "cost" j)

let warm_server () =
  let s = Session.create Paper_examples.example3 in
  let p = Para.of_session s in
  ignore (Para.satisfiable p : bool);
  ignore (Para.contradictions p : (string * string) list);
  ignore (Engine.classification (Session.engine s) : Classify.t);
  Serve.create s

let ask t line = parse_resp (Serve.handle t line)

(* ------------------------------------------------------------------ *)
(* In-process protocol *)

let protocol_tests =
  [ Alcotest.test_case "check on a warm session is free" `Quick (fun () ->
        let t = warm_server () in
        let r = ask t {|{"op":"check","id":"c1"}|} in
        checkb "ok" true (ok r);
        checks "id echoed" "c1" (str "id" r);
        checkb "consistent" true
          (match mem "consistent" r with Json_lite.Bool b -> b | _ -> false);
        checki "zero tableau calls" 0 (cost_tableau_calls r));
    Alcotest.test_case "second identical query is zero-tableau-call" `Quick
      (fun () ->
        let t = warm_server () in
        let q =
          {|{"op":"query","individual":"tweety","concept":"Fly"}|}
        in
        let r1 = ask t q in
        let r2 = ask t q in
        checkb "both ok" true (ok r1 && ok r2);
        checks "same truth" (str "truth" r1) (str "truth" r2);
        checki "warm query pays nothing" 0 (cost_tableau_calls r2);
        (* the envelope's cache counters moved: the warm query was hits *)
        checkb "served from cache" true
          (int_field "cache_served" (mem "cost" r2) > 0));
    Alcotest.test_case "retrieve and classify answer" `Quick (fun () ->
        let t = warm_server () in
        let r = ask t {|{"op":"retrieve","concept":"Bird"}|} in
        checkb "retrieve ok" true (ok r);
        checkb "has instances" true
          (match mem "instances" r with
          | Json_lite.Arr (_ :: _) -> true
          | _ -> false);
        let c = ask t {|{"op":"classify"}|} in
        checkb "classify ok" true (ok c);
        checkb "has taxonomy" true
          (match mem "taxonomy" c with
          | Json_lite.Arr (_ :: _) -> true
          | _ -> false));
    Alcotest.test_case "update applies a delta and queries see it" `Quick
      (fun () ->
        let t = warm_server () in
        let r =
          ask t {|{"op":"update","script":"+ tweety : Sings.\n"}|}
        in
        checkb "update ok" true (ok r);
        checki "one delta applied" 1 (int_field "applied" r);
        let q =
          ask t {|{"op":"query","individual":"tweety","concept":"Sings"}|}
        in
        checks "new fact is told true" "t" (str "truth" q));
    Alcotest.test_case "cq query answers with a plan summary; plans cached"
      `Quick (fun () ->
        let t = warm_server () in
        let q = {|{"op":"query","cq":"?x <- Bird(?x)"}|} in
        let r1 = ask t q in
        checkb "ok" true (ok r1);
        checks "cq echoed" "?x <- Bird(?x)" (str "cq" r1);
        let tuples j =
          match mem "answers" j with
          | Json_lite.Arr rows ->
              List.filter_map
                (fun row ->
                  match Json_lite.member "tuple" row with
                  | Some (Json_lite.Arr [ Json_lite.Str a ]) -> Some a
                  | _ -> None)
                rows
          | _ -> Alcotest.fail "answers is not an array"
        in
        checkb "tweety answers Bird(?x)" true (List.mem "tweety" (tuples r1));
        let cached j =
          match Json_lite.member "cached" (mem "plan" j) with
          | Some (Json_lite.Bool b) -> b
          | _ -> Alcotest.fail "plan.cached is not a boolean"
        in
        checkb "first shape compiles fresh" false (cached r1);
        checks "plan order" "cost" (str "order" (mem "plan" r1));
        checkb "strategies object present" true
          (match Json_lite.member "strategies" (mem "plan" r1) with
          | Some (Json_lite.Obj _) -> true
          | _ -> false);
        let r2 = ask t q in
        checkb "second shape served from the plan cache" true (cached r2);
        checkb "same answers from the cached plan" true
          (tuples r1 = tuples r2);
        (* an update invalidates the cached plans *)
        let u = ask t {|{"op":"update","script":"+ woody : Bird.\n"}|} in
        checkb "update ok" true (ok u);
        let r3 = ask t q in
        checkb "post-update shape recompiles" false (cached r3);
        checkb "new individual answers" true (List.mem "woody" (tuples r3)));
    Alcotest.test_case "update parse errors quote the offending line" `Quick
      (fun () ->
        let t = warm_server () in
        let r =
          ask t {|{"op":"update","script":"+ tweety : Sings.\nbogus stuff\n"}|}
        in
        checkb "not ok" true (not (ok r));
        let e = str "error" r in
        let contains sub =
          let n = String.length e and m = String.length sub in
          let rec go i = i + m <= n && (String.sub e i m = sub || go (i + 1)) in
          go 0
        in
        checkb "line number named" true (contains "line 2");
        checkb "offending text quoted" true (contains "bogus stuff"));
    Alcotest.test_case "malformed requests do not kill the server" `Quick
      (fun () ->
        let t = warm_server () in
        let bads =
          [ "this is not json";
            {|{"no_op_field":1}|};
            {|{"op":"nope"}|};
            {|{"op":"query","individual":"tweety"}|};
            {|{"op":"query","individual":"tweety","concept":"(((("}|};
            {|{"op":"update","script":42}|}
          ]
        in
        List.iter
          (fun bad ->
            let r = ask t bad in
            checkb (Printf.sprintf "%s -> ok:false" bad) true (not (ok r));
            checkb "carries an error message" true (String.length (str "error" r) > 0))
          bads;
        checkb "server not stopped" true (not (Serve.stopped t));
        (* and the very next request still works *)
        checkb "still serving" true (ok (ask t {|{"op":"check"}|})));
    Alcotest.test_case "stats reports request and call counters" `Quick
      (fun () ->
        let t = warm_server () in
        ignore (ask t {|{"op":"check"}|});
        let r = ask t {|{"op":"stats"}|} in
        checkb "ok" true (ok r);
        checki "requests counted" 2 (int_field "requests" r);
        checkb "totals present" true
          (match mem "totals" r with Json_lite.Obj _ -> true | _ -> false));
    Alcotest.test_case "snapshot op writes a loadable snapshot" `Quick
      (fun () ->
        let t = warm_server () in
        let path = Filename.temp_file "dl4_serve_test" ".snap" in
        let r =
          ask t
            (Printf.sprintf {|{"op":"snapshot","path":"%s"}|} path)
        in
        checkb "ok" true (ok r);
        (match Store.load path with
        | Ok snap ->
            checkb "snapshot holds the served KB" true
              (snap.Store.s_kb = Paper_examples.example3)
        | Error e -> Alcotest.failf "saved snapshot: %s" (Store.error_to_string e));
        Sys.remove path);
    Alcotest.test_case "shutdown flips the stop flag" `Quick (fun () ->
        let t = warm_server () in
        checkb "running" true (not (Serve.stopped t));
        let r = ask t {|{"op":"shutdown"}|} in
        checkb "ok" true (ok r);
        checkb "stopped" true (Serve.stopped t)) ]

(* ------------------------------------------------------------------ *)
(* A real daemon on a scratch socket *)

let socket_tests =
  [ Alcotest.test_case "forked daemon serves and shuts down" `Quick (fun () ->
        let socket_path = Filename.temp_file "dl4_serve_test" ".sock" in
        match Unix.fork () with
        | 0 ->
            (* child: build the warm session and serve until shutdown.
               _exit, not exit: the test runner's at_exit hooks belong
               to the parent *)
            let t = warm_server () in
            (try Serve.run ~socket_path t with _ -> ());
            Unix._exit 0
        | pid ->
            let deadline = Unix.gettimeofday () +. 10.0 in
            let rec await () =
              match Serve.request ~socket_path {|{"op":"check"}|} with
              | resp -> resp
              | exception Unix.Unix_error _ ->
                  if Unix.gettimeofday () > deadline then
                    Alcotest.fail "daemon did not come up"
                  else begin
                    Unix.sleepf 0.05;
                    await ()
                  end
            in
            let check_resp = parse_resp (await ()) in
            checkb "daemon consistent" true (ok check_resp);
            let q = {|{"op":"query","individual":"tweety","concept":"Fly"}|} in
            let r1 = parse_resp (Serve.request ~socket_path q) in
            let r2 = parse_resp (Serve.request ~socket_path q) in
            checkb "query ok over the wire" true (ok r1 && ok r2);
            checki "second query zero tableau calls" 0 (cost_tableau_calls r2);
            (* a malformed line must not take the daemon down *)
            let bad = parse_resp (Serve.request ~socket_path "garbage") in
            checkb "malformed -> structured error" true (not (ok bad));
            let again = parse_resp (Serve.request ~socket_path {|{"op":"check"}|}) in
            checkb "daemon survived" true (ok again);
            let bye = parse_resp (Serve.request ~socket_path {|{"op":"shutdown"}|}) in
            checkb "shutdown acked" true (ok bye);
            let _, status = Unix.waitpid [] pid in
            checkb "daemon exited cleanly" true (status = Unix.WEXITED 0);
            checkb "socket file removed" true (not (Sys.file_exists socket_path)))
  ]

let () =
  Alcotest.run "serve"
    [ ("protocol", protocol_tests); ("socket", socket_tests) ]
