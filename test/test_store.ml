(* Persistent KB store: dl4-snap round-trips and rejection of bad files.

   The round-trip contract is differential: a session restored from a
   snapshot must answer every query exactly like the warm session the
   snapshot was taken from — and pay zero tableau calls doing it,
   because every atomic verdict travels in the snapshot. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let kbs =
  [ ("example1", Paper_examples.example1);
    ("example2", Paper_examples.example2);
    ("example3", Paper_examples.example3);
    ("example4", Paper_examples.example4) ]

(* the warming the CLI's [dl4 snapshot] performs: consistency, the full
   atomic truth grid (both polarities), classification *)
let warm_session kb =
  let s = Session.create kb in
  let p = Para.of_session s in
  ignore (Para.satisfiable p : bool);
  ignore (Para.contradictions p : (string * string) list);
  ignore (Engine.classification (Session.engine s) : Classify.t);
  s

let grid s =
  let p = Para.of_session s in
  let sg = Kb4.signature (Session.kb s) in
  List.concat_map
    (fun a ->
      List.map
        (fun c -> (a, c, Para.instance_truth p a (Concept.Atom c)))
        sg.Axiom.concepts)
    sg.Axiom.individuals

let tableau_calls s = (Engine.stats (Session.engine s)).Engine.tableau_calls

let tmp_path suffix =
  Filename.temp_file "dl4_store_test" suffix

let restored_exn ?kb snap =
  match Store.restore ?kb snap with
  | Ok s -> s
  | Error e -> Alcotest.failf "restore: %s" (Store.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Round trips *)

let roundtrip_case (name, kb) =
  Alcotest.test_case name `Quick (fun () ->
      let s1 = warm_session kb in
      let snap = Store.capture s1 in
      let path = tmp_path ".snap" in
      (match Store.save snap path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" (Store.error_to_string e));
      let snap2 =
        match Store.load path with
        | Ok s -> s
        | Error e -> Alcotest.failf "load: %s" (Store.error_to_string e)
      in
      Sys.remove path;
      let s2 = restored_exn ~kb snap2 in
      (* the restore itself must not pay tableau calls: everything the
         warm grid needs travelled in the snapshot *)
      checki "restore is free" 0 (tableau_calls s2);
      (* differential: identical verdicts on the full atomic grid *)
      let g1 = grid s1 and g2 = grid s2 in
      List.iter2
        (fun (a1, c1, v1) (a2, c2, v2) ->
          checkb
            (Printf.sprintf "%s:%s = %s:%s" a1 c1 a2 c2)
            true
            (a1 = a2 && c1 = c2 && Truth.equal v1 v2))
        g1 g2;
      (* ... and re-answering the whole grid stayed warm *)
      checki "warm requery pays no tableau calls" 0 (tableau_calls s2);
      (* classification transferred, not rebuilt *)
      (match Engine.classification_if_built (Session.engine s2) with
      | None -> Alcotest.fail "classification not restored"
      | Some c2 ->
          Alcotest.(check (list (pair string (list string))))
            "classification contents" (Engine.classify (Session.engine s1))
            c2.Classify.supers);
      (* cost totals continue the saved history *)
      let t1 = Session.cost_totals s1 and t2 = Session.cost_totals s2 in
      checki "verdict totals carried over" t1.Oracle.verdicts
        t2.Oracle.verdicts;
      checki "rule-firing totals carried over"
        (List.fold_left (fun a (_, n) -> a + n) 0 t1.Oracle.rule_firings)
        (List.fold_left (fun a (_, n) -> a + n) 0 t2.Oracle.rule_firings);
      (* cache stats carried over (plus the hits the requery just paid) *)
      let c1 = Oracle.cache_stats (Session.oracle s1) in
      let c2 = Oracle.cache_stats (Session.oracle s2) in
      checki "cache size identical" c1.Verdict_cache.size
        c2.Verdict_cache.size;
      checkb "misses carried over" true
        (c2.Verdict_cache.misses = c1.Verdict_cache.misses))

let roundtrip_tests = List.map roundtrip_case kbs

(* ------------------------------------------------------------------ *)
(* In-memory string round trip and LRU preservation *)

let string_tests =
  [ Alcotest.test_case "of_string inverts to_string" `Quick (fun () ->
        let s = warm_session Paper_examples.example3 in
        let snap = Store.capture s in
        match Store.of_string (Store.to_string snap) with
        | Error e -> Alcotest.failf "decode: %s" (Store.error_to_string e)
        | Ok snap2 ->
            checki "entry count" (List.length snap.Store.s_entries)
              (List.length snap2.Store.s_entries);
            checkb "kb identical" true (snap.Store.s_kb = snap2.Store.s_kb);
            checkb "classical identical" true
              (snap.Store.s_classical = snap2.Store.s_classical);
            checkb "config identical" true
              (snap.Store.s_config = snap2.Store.s_config);
            (* export is in LRU order; a decoded snapshot preserves it *)
            let queries es =
              List.map (fun e -> e.Oracle.x_query) es
            in
            checkb "entry order preserved" true
              (queries snap.Store.s_entries = queries snap2.Store.s_entries));
    Alcotest.test_case "provenance survives the round trip" `Quick (fun () ->
        let s = warm_session Paper_examples.example1 in
        let snap = Store.capture s in
        let s2 = restored_exn ~kb:Paper_examples.example1 snap in
        (* a delta touching john must evict john-dependent verdicts in
           the restored session exactly as in a live one — that only
           works if provenance was re-posted on import *)
        let d =
          match Delta.parse "+ john : Patient.\n" with
          | Ok d -> d
          | Error e -> Alcotest.failf "delta: %s" e
        in
        let st = Session.apply s2 d in
        checkb "john-dependent verdicts evicted" true (st.Oracle.evicted > 0);
        checkb "not a full flush" true (not st.Oracle.flushed);
        checkb "independent verdicts retained" true (st.Oracle.retained > 0))
  ]

(* ------------------------------------------------------------------ *)
(* Rejection: corrupt, truncated, wrong-version, mismatched files never
   restore — they fail with a typed error the CLI turns into a warning
   and a cold build. *)

let expect_error name data pred =
  match Store.of_string data with
  | Ok _ -> Alcotest.failf "%s: decoded successfully" name
  | Error e ->
      checkb
        (Printf.sprintf "%s rejected (%s)" name (Store.error_to_string e))
        true (pred e)

let rejection_tests =
  let base () = Store.to_string (Store.capture (warm_session Paper_examples.example3)) in
  [ Alcotest.test_case "bit flip fails the section checksum" `Quick (fun () ->
        let data = base () in
        let b = Bytes.of_string data in
        (* flip a byte well inside the payload area *)
        let pos = String.length data - 7 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
        expect_error "bit flip" (Bytes.to_string b) (function
          | Store.Bad_checksum _ -> true
          | _ -> false));
    Alcotest.test_case "truncation is detected" `Quick (fun () ->
        let data = base () in
        List.iter
          (fun keep ->
            expect_error
              (Printf.sprintf "truncated to %d bytes" keep)
              (String.sub data 0 keep)
              (function
                | Store.Corrupt _ | Store.Bad_magic | Store.Bad_checksum _ ->
                    true
                | _ -> false))
          [ 0; 4; 11; String.length data / 2; String.length data - 1 ]);
    Alcotest.test_case "future version is refused" `Quick (fun () ->
        let data = base () in
        let b = Bytes.of_string data in
        (* the u32 version sits right after the 8-byte magic; pick a
           version strictly beyond the one this build writes *)
        let future = Store.version + 1 in
        Bytes.set b 8 (Char.chr future);
        expect_error
          (Printf.sprintf "version %d" future)
          (Bytes.to_string b)
          (function
            | Store.Bad_version v -> v = future
            | _ -> false));
    Alcotest.test_case "not a snapshot at all" `Quick (fun () ->
        expect_error "garbage" "definitely not a snapshot" (function
          | Store.Bad_magic -> true
          | _ -> false));
    Alcotest.test_case "restore refuses a different KB" `Quick (fun () ->
        let snap = Store.capture (warm_session Paper_examples.example3) in
        match Store.restore ~kb:Paper_examples.example1 snap with
        | Ok _ -> Alcotest.fail "mismatched KB restored"
        | Error Store.Kb_mismatch -> ()
        | Error e ->
            Alcotest.failf "wrong error: %s" (Store.error_to_string e));
    Alcotest.test_case "restore refuses an inconsistent classical KB" `Quick
      (fun () ->
        (* a snapshot whose stored K̄ is not the transform of its stored
           KB survived its checksums but is semantically doctored *)
        let snap = Store.capture (warm_session Paper_examples.example3) in
        let doctored =
          { snap with Store.s_classical = Transform.kb Paper_examples.example1 }
        in
        match Store.restore doctored with
        | Ok _ -> Alcotest.fail "doctored snapshot restored"
        | Error (Store.Corrupt _) -> ()
        | Error e ->
            Alcotest.failf "wrong error: %s" (Store.error_to_string e));
    Alcotest.test_case "missing file is an Io error" `Quick (fun () ->
        match Store.load "/nonexistent/dl4.snap" with
        | Ok _ -> Alcotest.fail "loaded a nonexistent file"
        | Error (Store.Io _) -> ()
        | Error e ->
            Alcotest.failf "wrong error: %s" (Store.error_to_string e)) ]

let () =
  Alcotest.run "store"
    [ ("roundtrip", roundtrip_tests);
      ("string", string_tests);
      ("rejection", rejection_tests) ]
