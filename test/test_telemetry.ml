(* PR 8: the request-telemetry plane.

   - the Telemetry registry: per-op accounting, merge, renderers
   - trace-ID propagation: one serve request's ID is visible in the
     response envelope, the returned cost object, the oracle's retained
     cost record, the eval span attrs, the slow-query log line and the
     access-log line
   - the rotating access log round-trips through Json_lite
   - client timeouts against a wedged (never-answering) socket *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse line =
  match Json_lite.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "not JSON (%s): %s" e line

let mem name j =
  match Json_lite.member name j with
  | Some v -> v
  | None -> Alcotest.failf "lacks field %S" name

let str name j = Option.value ~default:"" (Json_lite.to_str (mem name j))

let num name j =
  Option.value ~default:Float.nan (Json_lite.to_num (mem name j))

let tmp name = Filename.temp_file "dl4_telemetry" name

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let warm_server ?access_log ?access_log_max_bytes () =
  let s = Session.create Paper_examples.example3 in
  let p = Para.of_session s in
  ignore (Para.satisfiable p : bool);
  Serve.create ?access_log ?access_log_max_bytes s

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry_tests =
  [ Alcotest.test_case "record accumulates per op" `Quick (fun () ->
        let t = Telemetry.create () in
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:1000.0
          ~routes:[ ("horn", 2) ] ~cache_served:3 ();
        Telemetry.record t ~op:"query" ~ok:false ~wall_ns:5000.0
          ~routes:[ ("tableau", 1) ] ();
        Telemetry.record t ~op:"check" ~ok:true ~wall_ns:10.0 ();
        checki "total requests" 3 (Telemetry.requests t);
        checki "total errors" 1 (Telemetry.errors t);
        match Telemetry.view t with
        | [ chk; qry ] ->
            checks "sorted by op" "check" chk.Telemetry.v_op;
            checki "query requests" 2 qry.Telemetry.v_requests;
            checki "query errors" 1 qry.Telemetry.v_errors;
            checkb "both routes counted" true
              (qry.Telemetry.v_routes = [ ("horn", 2); ("tableau", 1) ]);
            checki "cache served" 3 qry.Telemetry.v_cache_served;
            checki "two buckets filled" 2
              (List.length qry.Telemetry.v_buckets)
        | l -> Alcotest.failf "expected 2 ops, got %d" (List.length l));
    Alcotest.test_case "merge adds counts, buckets and routes" `Quick
      (fun () ->
        let a = Telemetry.create () and b = Telemetry.create () in
        Telemetry.record a ~op:"query" ~ok:true ~wall_ns:1000.0
          ~routes:[ ("horn", 1) ] ();
        Telemetry.record b ~op:"query" ~ok:true ~wall_ns:1000.0
          ~routes:[ ("horn", 2); ("tableau", 5) ] ();
        Telemetry.record b ~op:"stats" ~ok:true ~wall_ns:50.0 ();
        Telemetry.merge ~into:a b;
        checki "merged requests" 3 (Telemetry.requests a);
        let qry =
          List.find (fun v -> v.Telemetry.v_op = "query") (Telemetry.view a)
        in
        checkb "routes union-add" true
          (qry.Telemetry.v_routes = [ ("horn", 3); ("tableau", 5) ]);
        checkb "same-bucket counts add" true
          (List.exists (fun (_, c) -> c = 2) qry.Telemetry.v_buckets);
        checki "source unchanged" 2 (Telemetry.requests b));
    Alcotest.test_case "json rendering round-trips through Json_lite" `Quick
      (fun () ->
        let t = Telemetry.create () in
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:4096.0
          ~routes:[ ("horn", 1) ] ~cache_served:2 ~tableau_calls:0 ();
        let j = parse (Telemetry.json t) in
        checks "schema" "dl4-metrics/1" (str "schema" j);
        checkb "uptime >= 0" true (num "uptime_s" j >= 0.0);
        match Json_lite.to_list (mem "ops" j) with
        | Some [ op ] ->
            checks "op name" "query" (str "op" op);
            checkb "p50 estimate in the right bucket" true
              (let p50 = num "p50_ns" op in
               p50 >= 4096.0 && p50 <= 8192.0);
            checkb "routes object" true
              (match Json_lite.member "routes" op with
              | Some (Json_lite.Obj [ ("horn", Json_lite.Num 1.0) ]) -> true
              | _ -> false)
        | _ -> Alcotest.fail "ops is not a 1-element array") ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let prom_tests =
  [ Alcotest.test_case "exposition has cumulative monotone buckets" `Quick
      (fun () ->
        let t = Telemetry.create () in
        (* three observations across two buckets *)
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:1000.0 ();
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:1100.0 ();
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:70000.0 ();
        let text = Telemetry.prometheus t in
        let bucket_counts =
          List.filter_map
            (fun line ->
              let prefix = "dl4_request_duration_seconds_bucket" in
              if
                String.length line > String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
              then
                match String.rindex_opt line ' ' with
                | Some i ->
                    float_of_string_opt
                      (String.sub line (i + 1) (String.length line - i - 1))
                | None -> None
              else None)
            (String.split_on_char '\n' text)
        in
        checkb "at least 3 bucket samples (2 + Inf)" true
          (List.length bucket_counts >= 3);
        let rec monotone prev = function
          | [] -> true
          | v :: rest -> v >= prev && monotone v rest
        in
        checkb "cumulative counts are monotone" true
          (monotone 0.0 bucket_counts);
        checkb "last bucket (+Inf) holds all observations" true
          (List.rev bucket_counts |> List.hd = 3.0);
        checkb "count sample present" true
          (List.exists
             (fun l ->
               l = "dl4_request_duration_seconds_count{op=\"query\"} 3")
             (String.split_on_char '\n' text)));
    Alcotest.test_case "label escaping" `Quick (fun () ->
        checks "backslash" "a\\\\b" (Telemetry.label_escape "a\\b");
        checks "quote" "say \\\"hi\\\"" (Telemetry.label_escape "say \"hi\"");
        checks "newline" "x\\ny" (Telemetry.label_escape "x\ny");
        let t = Telemetry.create () in
        Telemetry.record t ~op:"we\"ird\\op" ~ok:true ~wall_ns:10.0 ();
        let text = Telemetry.prometheus t in
        checkb "escaped op label appears" true
          (let needle = "op=\"we\\\"ird\\\\op\"" in
           let rec find i =
             i + String.length needle <= String.length text
             && (String.sub text i (String.length needle) = needle
                || find (i + 1))
           in
           find 0));
    Alcotest.test_case "planner strategy counters flow to every renderer"
      `Quick (fun () ->
        let t = Telemetry.create () in
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:1000.0
          ~strategies:[ ("hash_join", 2); ("nested_loop", 1) ] ();
        Telemetry.record t ~op:"query" ~ok:true ~wall_ns:1000.0
          ~strategies:[ ("hash_join", 1) ] ();
        let qry =
          List.find (fun v -> v.Telemetry.v_op = "query") (Telemetry.view t)
        in
        checkb "view accumulates per strategy" true
          (qry.Telemetry.v_strategies
          = [ ("hash_join", 3); ("nested_loop", 1) ]);
        let j = parse (Telemetry.json t) in
        (match Json_lite.to_list (mem "ops" j) with
        | Some [ op ] ->
            checkb "json strategies object" true
              (match Json_lite.member "strategies" op with
              | Some
                  (Json_lite.Obj
                    [
                      ("hash_join", Json_lite.Num 3.0);
                      ("nested_loop", Json_lite.Num 1.0);
                    ]) ->
                  true
              | _ -> false)
        | _ -> Alcotest.fail "ops is not a 1-element array");
        let text = Telemetry.prometheus t in
        let lines = String.split_on_char '\n' text in
        checkb "prometheus hash_join sample" true
          (List.mem
             "dl4_planner_strategy_total{op=\"query\",strategy=\"hash_join\"} 3"
             lines);
        checkb "prometheus nested_loop sample" true
          (List.mem
             "dl4_planner_strategy_total{op=\"query\",strategy=\"nested_loop\"} 1"
             lines);
        let other = Telemetry.create () in
        Telemetry.record other ~op:"query" ~ok:true ~wall_ns:1.0
          ~strategies:[ ("nested_loop", 4) ] ();
        Telemetry.merge ~into:t other;
        let qry =
          List.find (fun v -> v.Telemetry.v_op = "query") (Telemetry.view t)
        in
        checkb "merge union-adds strategies" true
          (qry.Telemetry.v_strategies
          = [ ("hash_join", 3); ("nested_loop", 5) ]));
    Alcotest.test_case "atomic write leaves no tmp file" `Quick (fun () ->
        let t = Telemetry.create () in
        Telemetry.record t ~op:"check" ~ok:true ~wall_ns:42.0 ();
        let path = tmp ".prom" in
        Telemetry.write_prometheus t path;
        checkb "exposition written" true (Sys.file_exists path);
        checkb "tmp renamed away" true (not (Sys.file_exists (path ^ ".tmp")));
        Sys.remove path) ]

(* ------------------------------------------------------------------ *)
(* Trace-ID propagation: one request, one ID, visible everywhere *)

let propagation_tests =
  [ Alcotest.test_case
      "response, cost record, span, slow log and access log share the ID"
      `Quick (fun () ->
        let slow = tmp ".slow.jsonl" and access = tmp ".access.jsonl" in
        Sys.remove slow;
        Sys.remove access;
        Obs.arm_slow_log ~threshold_ms:0.0 slow;
        Obs.set_enabled true;
        Obs.reset ();
        let t = warm_server ~access_log:access () in
        let resp =
          Fun.protect
            ~finally:(fun () ->
              Obs.set_enabled false;
              Obs.disarm_slow_log ())
            (fun () ->
              (* uncached conjunction: forces a computed verdict so a
                 cost record and slow-log line exist *)
              Serve.handle t
                {|{"op":"query","individual":"tweety","concept":"Fly & Penguin"}|})
        in
        Serve.sync t;
        let j = parse resp in
        let tid = str "trace_id" j in
        checkb "response carries a trace id" true (tid <> "");
        checks "cost object repeats the id" tid (str "trace_id" (mem "cost" j));
        (* the oracle retained the computed verdicts' cost records *)
        let costs = Session.costs (Serve.session t) in
        let tagged =
          List.filter (fun c -> c.Oracle.c_trace = tid) costs
        in
        checkb "a retained cost record carries the id" true (tagged <> []);
        (* the eval spans carry it as an attr *)
        let spans = Obs.spans () in
        checkb "an oracle.eval span carries the id" true
          (List.exists
             (fun r ->
               r.Obs.r_name = "oracle.eval"
               && List.mem ("trace_id", tid) r.Obs.r_attrs)
             spans);
        (* the slow log (threshold 0) has lines with the id *)
        let slow_hits =
          List.filter
            (fun line -> str "trace_id" (parse line) = tid)
            (read_lines slow)
        in
        checkb "slow-log lines carry the id" true (slow_hits <> []);
        (* the slow-log line names its backend route (satellite: the
           serializer keeps c_backend) *)
        List.iter
          (fun line ->
            let b = str "backend" (parse line) in
            checkb "slow-log line names a backend" true
              (b = "tableau" || b = "horn"))
          slow_hits;
        (* the access log's single line is the same request *)
        (match read_lines access with
        | [ line ] ->
            let a = parse line in
            checks "access-log line carries the id" tid (str "trace_id" a);
            checks "op" "query" (str "op" a);
            checks "outcome" "ok" (str "outcome" a);
            checkb "wall_ns positive" true (num "wall_ns" a > 0.0);
            checkb "routes counted" true
              (match Json_lite.member "routes" a with
              | Some (Json_lite.Obj (_ :: _)) -> true
              | _ -> false)
        | l -> Alcotest.failf "expected 1 access-log line, got %d"
                 (List.length l));
        Sys.remove slow;
        Sys.remove access);
    Alcotest.test_case "flight events record the installed id" `Quick
      (fun () ->
        Flight.reset ();
        Obs.with_trace_id "feedcafe00000001" (fun () ->
            Flight.record "test" 1 2 "hello");
        let dump = parse (Flight.dump ()) in
        let domains =
          Option.value ~default:[] (Json_lite.to_list (mem "domains" dump))
        in
        let events =
          List.concat_map
            (fun d ->
              Option.value ~default:[] (Json_lite.to_list (mem "events" d)))
            domains
        in
        checkb "the event carries trace" true
          (List.exists
             (fun e ->
               (match Json_lite.member "trace" e with
               | Some (Json_lite.Str "feedcafe00000001") -> true
               | _ -> false)
               && str "kind" e = "test")
             events);
        Flight.reset ());
    Alcotest.test_case "horn-backend verdicts carry the installed id" `Quick
      (fun () ->
        (* regression: the completion-engine route must stamp [c_trace]
           exactly like the tableau route does *)
        let kb =
          Surface.parse_kb4_exn
            "Bird < Fly.\nPenguin < Bird.\ntweety : Penguin.\n"
        in
        let s =
          Session.create
            ~config:
              { Session.default_config with Session.backend = Backend.Horn }
            kb
        in
        let p = Para.of_session s in
        let tid = "feedcafe00000002" in
        Obs.with_trace_id tid (fun () ->
            ignore (Para.instance_truth p "tweety" (Concept.Atom "Fly")
                    : Truth.t));
        let horn =
          List.filter
            (fun c -> c.Oracle.c_backend = "horn")
            (Session.costs s)
        in
        checkb "horn computed the verdicts" true (horn <> []);
        checkb "every horn cost record carries the id" true
          (List.for_all (fun c -> c.Oracle.c_trace = tid) horn));
    Alcotest.test_case "every request gets a distinct id" `Quick (fun () ->
        let t = warm_server () in
        let id1 = str "trace_id" (parse (Serve.handle t {|{"op":"check"}|})) in
        let id2 = str "trace_id" (parse (Serve.handle t {|{"op":"check"}|})) in
        checkb "non-empty" true (id1 <> "" && id2 <> "");
        checkb "distinct" true (id1 <> id2));
    Alcotest.test_case "disarmed telemetry mints no ids" `Quick (fun () ->
        let s = Session.create Paper_examples.example3 in
        let t = Serve.create ~telemetry:false s in
        let j = parse (Serve.handle t {|{"op":"check"}|}) in
        checkb "no trace_id in envelope" true
          (Json_lite.member "trace_id" j = None);
        checkb "metrics op refused" true
          (match Json_lite.member "ok" (parse (Serve.handle t {|{"op":"metrics"}|})) with
          | Some (Json_lite.Bool false) -> true
          | _ -> false)) ]

(* ------------------------------------------------------------------ *)
(* Serve metrics plane: the metrics/stats ops and the access log *)

let serve_tests =
  [ Alcotest.test_case "metrics op returns the registry" `Quick (fun () ->
        let t = warm_server () in
        ignore (Serve.handle t {|{"op":"query","individual":"tweety","concept":"Bird"}|});
        let j = parse (Serve.handle t {|{"op":"metrics"}|}) in
        checkb "ok" true
          (match mem "ok" j with Json_lite.Bool b -> b | _ -> false);
        let m = mem "metrics" j in
        checks "schema" "dl4-metrics/1" (str "schema" m);
        checkb "query op accounted" true
          (match Json_lite.to_list (mem "ops" m) with
          | Some ops ->
              List.exists (fun op -> str "op" op = "query") ops
          | None -> false));
    Alcotest.test_case "stats reports uptime and per-op counters" `Quick
      (fun () ->
        let t = warm_server () in
        ignore (Serve.handle t {|{"op":"check"}|});
        ignore (Serve.handle t {|{"op":"nope"}|});
        let j = parse (Serve.handle t {|{"op":"stats"}|}) in
        checkb "uptime_s >= 0" true (num "uptime_s" j >= 0.0);
        let ops = mem "ops" j in
        checki "check requests" 1 (int_of_float (num "requests" (mem "check" ops)));
        checki "unknown op errors counted" 1
          (int_of_float (num "errors" (mem "unknown" ops))));
    Alcotest.test_case "malformed and unknown ops are labeled, not raw"
      `Quick (fun () ->
        let t = warm_server () in
        ignore (Serve.handle t "this is not json");
        ignore (Serve.handle t {|{"op":"evil{}op"}|});
        match Serve.telemetry t with
        | None -> Alcotest.fail "telemetry should be armed by default"
        | Some tel ->
            let names =
              List.map (fun v -> v.Telemetry.v_op) (Telemetry.view tel)
            in
            checkb "malformed label" true (List.mem "malformed" names);
            checkb "unknown label" true (List.mem "unknown" names);
            checkb "raw op string never becomes a label" true
              (not (List.mem "evil{}op" names)));
    Alcotest.test_case "access log rotates at the size threshold" `Quick
      (fun () ->
        let access = tmp ".access.jsonl" in
        Sys.remove access;
        let t = warm_server ~access_log:access ~access_log_max_bytes:1024 () in
        for _ = 1 to 32 do
          ignore (Serve.handle t {|{"op":"check"}|})
        done;
        Serve.sync t;
        checkb "rotated file exists" true (Sys.file_exists (access ^ ".1"));
        checkb "live file exists" true (Sys.file_exists access);
        (* one rotated generation is kept; every surviving line in both
           generations is complete JSON (rotation never splits a line) *)
        let all = read_lines (access ^ ".1") @ read_lines access in
        checkb "rotation trimmed the live file" true
          (List.length (read_lines access) < 32);
        checkb "some lines survive" true (all <> []);
        List.iter (fun l -> ignore (parse l)) all;
        Sys.remove access;
        Sys.remove (access ^ ".1"));
    Alcotest.test_case "client timeout against a wedged socket" `Quick
      (fun () ->
        (* a listener that accepts no connection: connect succeeds
           (backlog), the response never comes, SO_RCVTIMEO fires *)
        let path = tmp ".sock" in
        Sys.remove path;
        let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind srv (Unix.ADDR_UNIX path);
        Unix.listen srv 1;
        let t0 = Unix.gettimeofday () in
        (match Serve.request ~timeout_ms:200 ~socket_path:path {|{"op":"check"}|} with
        | _ -> Alcotest.fail "request against a wedged daemon returned"
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
          ->
            let dt = Unix.gettimeofday () -. t0 in
            checkb "timed out promptly" true (dt < 5.0));
        Unix.close srv;
        Sys.remove path) ]

let () =
  Alcotest.run "telemetry"
    [ ("registry", registry_tests);
      ("prometheus", prom_tests);
      ("trace-propagation", propagation_tests);
      ("serve-plane", serve_tests) ]
